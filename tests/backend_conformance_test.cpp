// Backend conformance: every TM the factory can build must survive the
// paper's Fig 1 privatization litmus scenarios *with fences enabled* —
// delayed commit (1a) and doomed transaction (1b) — with zero
// strong-atomicity violations, and the recorded histories must be
// race-free and strongly opaque under the existing checker pipeline.
//
// The gate runs each scenario under every quiescence engine a fence can
// take (DESIGN.md §5): the per-fence-scan default (kEpochCounter), the
// coalesced shared-grace-period mode (kGracePeriodEpoch), and the
// asynchronous ticket path (issue + await, recorded on the shadow fence
// stream). This is what a new backend (e.g. tl2fused) — or a new fence
// engine — has to pass: it proves the privatization-safety protocol
// survived whatever fast-path representation was chosen.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "drf/race.hpp"
#include "history/wellformed.hpp"
#include "lang/litmus.hpp"
#include "tm/factory.hpp"

namespace privstm {
namespace {

using tm::FencePolicy;
using tm::TmKind;

enum class FenceVariant {
  kSyncEpoch,        ///< synchronous fences, per-fence scan (the default)
  kSyncGracePeriod,  ///< synchronous fences, coalesced grace periods
  kAsync,            ///< asynchronous fences (tickets) over grace periods
};

const char* fence_variant_name(FenceVariant v) {
  switch (v) {
    case FenceVariant::kSyncEpoch:
      return "sync_epoch";
    case FenceVariant::kSyncGracePeriod:
      return "sync_gp";
    case FenceVariant::kAsync:
      return "async";
  }
  return "?";
}

class BackendConformance
    : public ::testing::TestWithParam<std::tuple<TmKind, bool, FenceVariant>> {
};

TEST_P(BackendConformance, FencedFig1ScenariosAreSafe) {
  const auto [kind, doomed, variant] = GetParam();
  const lang::LitmusSpec spec =
      doomed ? lang::make_fig1b(true) : lang::make_fig1a(true);

  // The default variant keeps the original (largest) run counts; the two
  // new engines re-run the same scenarios slightly lighter to bound the
  // gate's wall-clock on the CI box.
  const bool default_variant = variant == FenceVariant::kSyncEpoch;

  lang::LitmusRunOptions options;
  if (variant != FenceVariant::kSyncEpoch) {
    options.fence_mode = rt::FenceMode::kGracePeriodEpoch;
  }
  options.async_fences = variant == FenceVariant::kAsync;

  // Pass 1: many runs with a widened commit window, counting postcondition
  // violations — the paper-shape result (Fig 9 with fences: zero).
  options.runs = default_variant ? 300 : 200;
  options.jitter_max_spins = 200;
  options.commit_pause_spins = 150;
  options.seed = 20260730;
  auto stats = lang::run_litmus(spec, kind, FencePolicy::kSelective, options);
  EXPECT_EQ(stats.postcondition_violations, 0u)
      << tm::tm_kind_name(kind) << " violated " << spec.name << " under "
      << fence_variant_name(variant);

  // Pass 2: fewer runs, each recorded and pushed through the DRF +
  // strong-opacity pipeline — the fence must make every conflict
  // hb-ordered (no racy histories) and every history opaque. For the
  // async variant this additionally vets the shadow-stream fbegin/fend
  // bracketing against condition 10 of the well-formedness judgment.
  options.runs = default_variant ? 40 : 25;
  options.seed = 4242;
  options.check_strong_opacity = true;
  stats = lang::run_litmus(spec, kind, FencePolicy::kSelective, options);
  EXPECT_GT(stats.histories_checked, 0u);
  EXPECT_EQ(stats.racy_histories, 0u)
      << tm::tm_kind_name(kind) << " produced a racy history on "
      << spec.name << " under " << fence_variant_name(variant);
  EXPECT_EQ(stats.opacity_violations, 0u)
      << tm::tm_kind_name(kind) << " on " << spec.name << " under "
      << fence_variant_name(variant) << ": "
      << stats.first_violation_detail;
  EXPECT_EQ(stats.postcondition_violations, 0u);
}

// ---------------------------------------------------------------------------
// Reclamation safety: the use-after-free litmus.
//
// The paper's memory-reclamation idiom on the heap API: a mutator commits
// a transactional write into a dynamically allocated node while the node
// is still shared; the owner then privatizes the node (unlinks it
// transactionally), frees it, and reuses the memory with an uninstrumented
// write — the moment the allocator's client would recycle a reclaimed
// node. Without a fence between the unlink and the reuse, the reuse races
// with the mutator's (possibly delayed) commit, and the DRF checker flags
// exactly that conflict on the freed location. With the fence, the bf/af
// edges order every pre-privatization transaction before the reuse and
// the history is race-free. (That `tm_free` itself never *recycles* the
// block into another allocation before the grace period is covered by
// heap_test's FreeRecyclesOnlyAfterQuiescence.)
// ---------------------------------------------------------------------------

class ReclamationLitmus : public ::testing::TestWithParam<TmKind> {};

TEST_P(ReclamationLitmus, UseAfterFreeIsRacyWithoutFenceCleanWithFence) {
  for (const bool with_fence : {false, true}) {
    auto tmi = tm::make_tm(GetParam(), tm::TmConfig{});
    hist::Recorder recorder;
    const tm::TxHandle node = tmi->tm_alloc(1);

    {
      auto mutator = tmi->make_thread(1, &recorder);
      auto owner = tmi->make_thread(0, &recorder);

      // Mutator: while the node is shared (flag 0), write into it — the
      // transaction whose commit the fence must wait out.
      tm::run_tx_retry(*mutator, [&](tm::TxScope& tx) {
        if (tx.read(0) == 0) tx.write(node.loc(), 501);
      });

      // Owner: privatize (unlink) the node, then free and reuse it.
      tm::run_tx_retry(*owner,
                       [&](tm::TxScope& tx) { tx.write(0, 601); });
      if (with_fence) owner->fence();
      tmi->tm_free(node);
      owner->nt_write(node.loc(), 701);  // the use-after-free
    }

    const auto exec = recorder.collect();
    ASSERT_TRUE(hist::check_wellformed(exec.history).ok());
    const auto report = drf::find_races(exec.history);
    if (with_fence) {
      EXPECT_TRUE(report.drf())
          << tm::tm_kind_name(GetParam())
          << ": fenced reclamation must be race-free\n"
          << report.to_string(exec.history);
    } else {
      bool race_on_node = false;
      for (const auto& race : report.races) {
        if (race.reg == node.loc()) race_on_node = true;
      }
      EXPECT_TRUE(race_on_node)
          << tm::tm_kind_name(GetParam())
          << ": unfenced use-after-free must race on the freed location\n"
          << exec.history.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTms, ReclamationLitmus,
                         ::testing::ValuesIn(tm::all_tm_kinds()),
                         [](const auto& info) {
                           return std::string(tm::tm_kind_name(info.param));
                         });

INSTANTIATE_TEST_SUITE_P(
    AllTms, BackendConformance,
    ::testing::Combine(::testing::ValuesIn(tm::all_tm_kinds()),
                       ::testing::Bool(),
                       ::testing::Values(FenceVariant::kSyncEpoch,
                                         FenceVariant::kSyncGracePeriod,
                                         FenceVariant::kAsync)),
    [](const auto& info) {
      return std::string(tm::tm_kind_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_fig1b_doomed" : "_fig1a_delayed") +
             "_" + fence_variant_name(std::get<2>(info.param));
    });

}  // namespace
}  // namespace privstm
