// Backend conformance: every TM the factory can build must survive the
// paper's Fig 1 privatization litmus scenarios *with fences enabled* —
// delayed commit (1a) and doomed transaction (1b) — with zero
// strong-atomicity violations, and the recorded histories must be
// race-free and strongly opaque under the existing checker pipeline.
//
// The gate runs each scenario under every quiescence engine a fence can
// take (DESIGN.md §5): the per-fence-scan default (kEpochCounter), the
// coalesced shared-grace-period mode (kGracePeriodEpoch), and the
// asynchronous ticket path (issue + await, recorded on the shadow fence
// stream). This is what a new backend (e.g. tl2fused) — or a new fence
// engine — has to pass: it proves the privatization-safety protocol
// survived whatever fast-path representation was chosen.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "drf/race.hpp"
#include "history/wellformed.hpp"
#include "lang/litmus.hpp"
#include "tm/factory.hpp"

namespace privstm {
namespace {

using tm::FencePolicy;
using tm::TmKind;

enum class FenceVariant {
  kSyncEpoch,        ///< synchronous fences, per-fence scan (the default)
  kSyncGracePeriod,  ///< synchronous fences, coalesced grace periods
  kAsync,            ///< asynchronous fences (tickets) over grace periods
};

const char* fence_variant_name(FenceVariant v) {
  switch (v) {
    case FenceVariant::kSyncEpoch:
      return "sync_epoch";
    case FenceVariant::kSyncGracePeriod:
      return "sync_gp";
    case FenceVariant::kAsync:
      return "async";
  }
  return "?";
}

class BackendConformance
    : public ::testing::TestWithParam<std::tuple<TmKind, bool, FenceVariant>> {
};

TEST_P(BackendConformance, FencedFig1ScenariosAreSafe) {
  const auto [kind, doomed, variant] = GetParam();
  const lang::LitmusSpec spec =
      doomed ? lang::make_fig1b(true) : lang::make_fig1a(true);

  // The default variant keeps the original (largest) run counts; the two
  // new engines re-run the same scenarios slightly lighter to bound the
  // gate's wall-clock on the CI box.
  const bool default_variant = variant == FenceVariant::kSyncEpoch;

  lang::LitmusRunOptions options;
  if (variant != FenceVariant::kSyncEpoch) {
    options.fence_mode = rt::FenceMode::kGracePeriodEpoch;
  }
  options.async_fences = variant == FenceVariant::kAsync;

  // Pass 1: many runs with a widened commit window, counting postcondition
  // violations — the paper-shape result (Fig 9 with fences: zero).
  options.runs = default_variant ? 300 : 200;
  options.jitter_max_spins = 200;
  options.commit_pause_spins = 150;
  options.seed = 20260730;
  auto stats = lang::run_litmus(spec, kind, FencePolicy::kSelective, options);
  EXPECT_EQ(stats.postcondition_violations, 0u)
      << tm::tm_kind_name(kind) << " violated " << spec.name << " under "
      << fence_variant_name(variant);

  // Pass 2: fewer runs, each recorded and pushed through the DRF +
  // strong-opacity pipeline — the fence must make every conflict
  // hb-ordered (no racy histories) and every history opaque. For the
  // async variant this additionally vets the shadow-stream fbegin/fend
  // bracketing against condition 10 of the well-formedness judgment.
  options.runs = default_variant ? 40 : 25;
  options.seed = 4242;
  options.check_strong_opacity = true;
  stats = lang::run_litmus(spec, kind, FencePolicy::kSelective, options);
  EXPECT_GT(stats.histories_checked, 0u);
  EXPECT_EQ(stats.racy_histories, 0u)
      << tm::tm_kind_name(kind) << " produced a racy history on "
      << spec.name << " under " << fence_variant_name(variant);
  EXPECT_EQ(stats.opacity_violations, 0u)
      << tm::tm_kind_name(kind) << " on " << spec.name << " under "
      << fence_variant_name(variant) << ": "
      << stats.first_violation_detail;
  EXPECT_EQ(stats.postcondition_violations, 0u);
}

// Reclamation safety (the use-after-free litmus) lives in
// tests/reclamation_litmus_test.cpp: the scenarios are now expressed in
// the mini-language itself (lang/litmus.hpp's reclamation catalog),
// model-checked exhaustively by the explorer and run against every
// backend there, which replaces the hand-written C++ ReclamationLitmus
// this file used to carry.

INSTANTIATE_TEST_SUITE_P(
    AllTms, BackendConformance,
    ::testing::Combine(::testing::ValuesIn(tm::all_tm_kinds()),
                       ::testing::Bool(),
                       ::testing::Values(FenceVariant::kSyncEpoch,
                                         FenceVariant::kSyncGracePeriod,
                                         FenceVariant::kAsync)),
    [](const auto& info) {
      return std::string(tm::tm_kind_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_fig1b_doomed" : "_fig1a_delayed") +
             "_" + fence_variant_name(std::get<2>(info.param));
    });

}  // namespace
}  // namespace privstm
