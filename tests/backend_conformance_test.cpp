// Backend conformance: every TM the factory can build must survive the
// paper's Fig 1 privatization litmus scenarios *with fences enabled* —
// delayed commit (1a) and doomed transaction (1b) — with zero
// strong-atomicity violations, and the recorded histories must be
// race-free and strongly opaque under the existing checker pipeline.
//
// This is the gate a new backend (e.g. tl2fused) has to pass: it proves
// the fence-based privatization-safety protocol survived whatever fast-path
// representation the backend chose.
#include <gtest/gtest.h>

#include <tuple>

#include "lang/litmus.hpp"
#include "tm/factory.hpp"

namespace privstm {
namespace {

using tm::FencePolicy;
using tm::TmKind;

class BackendConformance
    : public ::testing::TestWithParam<std::tuple<TmKind, bool>> {};

TEST_P(BackendConformance, FencedFig1ScenariosAreSafe) {
  const auto [kind, doomed] = GetParam();
  const lang::LitmusSpec spec =
      doomed ? lang::make_fig1b(true) : lang::make_fig1a(true);

  // Pass 1: many runs with a widened commit window, counting postcondition
  // violations — the paper-shape result (Fig 9 with fences: zero).
  lang::LitmusRunOptions options;
  options.runs = 300;
  options.jitter_max_spins = 200;
  options.commit_pause_spins = 150;
  options.seed = 20260730;
  auto stats = lang::run_litmus(spec, kind, FencePolicy::kSelective, options);
  EXPECT_EQ(stats.postcondition_violations, 0u)
      << tm::tm_kind_name(kind) << " violated " << spec.name;

  // Pass 2: fewer runs, each recorded and pushed through the DRF +
  // strong-opacity pipeline — the fence must make every conflict
  // hb-ordered (no racy histories) and every history opaque.
  options.runs = 40;
  options.seed = 4242;
  options.check_strong_opacity = true;
  stats = lang::run_litmus(spec, kind, FencePolicy::kSelective, options);
  EXPECT_GT(stats.histories_checked, 0u);
  EXPECT_EQ(stats.racy_histories, 0u)
      << tm::tm_kind_name(kind) << " produced a racy history on "
      << spec.name;
  EXPECT_EQ(stats.opacity_violations, 0u)
      << tm::tm_kind_name(kind) << " on " << spec.name << ": "
      << stats.first_violation_detail;
  EXPECT_EQ(stats.postcondition_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTms, BackendConformance,
    ::testing::Combine(::testing::ValuesIn(tm::all_tm_kinds()),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(tm::tm_kind_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_fig1b_doomed" : "_fig1a_delayed");
    });

}  // namespace
}  // namespace privstm
