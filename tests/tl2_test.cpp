// TL2-specific tests: the validation rules of Fig 9, abort behaviour,
// version clock discipline, and the uninstrumented-NT-access property that
// drives the Fig 1 problems.
#include <gtest/gtest.h>

#include <thread>

#include "history/recorder.hpp"
#include "runtime/rng.hpp"
#include "tm/tl2.hpp"

namespace privstm {
namespace {

using tm::Tl2;
using tm::TmConfig;
using tm::TxResult;

TmConfig config(std::size_t regs = 8) {
  TmConfig c;
  c.num_registers = regs;
  return c;
}

TEST(Tl2, ReadValidationAbortsOnConcurrentCommit) {
  Tl2 tmi(config());
  auto s0 = tmi.make_thread(0, nullptr);
  auto s1 = tmi.make_thread(1, nullptr);

  // s0 starts and reads register 0 (fixing rver).
  ASSERT_TRUE(s0->tx_begin());
  hist::Value v = 0;
  ASSERT_TRUE(s0->tx_read(0, v));
  EXPECT_EQ(v, hist::kVInit);

  // s1 commits a write to register 1, advancing the clock and versions.
  ASSERT_EQ(tm::run_tx(*s1, [](tm::TxScope& tx) { tx.write(1, 5); }),
            TxResult::kCommitted);

  // s0 now reads register 1: version > rver ⇒ abort (Fig 9 line 21).
  EXPECT_FALSE(s0->tx_read(1, v));
  EXPECT_GE(tmi.stats().total(rt::Counter::kTxReadValidationFail), 1u);
}

TEST(Tl2, CommitValidationAbortsWhenReadSetStale) {
  Tl2 tmi(config());
  auto s0 = tmi.make_thread(0, nullptr);
  auto s1 = tmi.make_thread(1, nullptr);

  ASSERT_TRUE(s0->tx_begin());
  hist::Value v = 0;
  ASSERT_TRUE(s0->tx_read(0, v));  // read set: {0}
  ASSERT_TRUE(s0->tx_write(1, 9));

  // s1 overwrites register 0 and commits.
  ASSERT_EQ(tm::run_tx(*s1, [](tm::TxScope& tx) { tx.write(0, 7); }),
            TxResult::kCommitted);

  // s0's commit must fail read-set validation (Fig 9 lines 41–50).
  EXPECT_EQ(s0->tx_commit(), TxResult::kAborted);
  EXPECT_EQ(tmi.peek(1), hist::kVInit);  // its write never landed
}

TEST(Tl2, ReadWriteSameRegisterCommits) {
  // Divergence check (see tl2.hpp): a transaction that reads and writes
  // the same register must not self-abort on its own commit lock.
  Tl2 tmi(config());
  auto session = tmi.make_thread(0, nullptr);
  const auto result = tm::run_tx(*session, [](tm::TxScope& tx) {
    tx.write(2, tx.read(2) + 1);
  });
  EXPECT_EQ(result, TxResult::kCommitted);
  EXPECT_EQ(tmi.peek(2), 1u);
}

TEST(Tl2, WriteLockConflictAborts) {
  Tl2 tmi(config());
  auto s0 = tmi.make_thread(0, nullptr);
  auto s1 = tmi.make_thread(1, nullptr);
  // Pause s1's commit while it holds the lock on register 0 by running it
  // in a second thread against a commit_pause... simpler deterministic
  // variant: exploit that locks are held only during commit, so emulate
  // the conflict by a doomed read instead. Here we check lock failure via
  // two sessions racing on the same register with pauses.
  TmConfig paused = config();
  paused.commit_pause_spins = 200000;
  Tl2 tmi2(paused);
  auto a = tmi2.make_thread(0, nullptr);
  auto b = tmi2.make_thread(1, nullptr);
  std::thread holder([&] {
    tm::run_tx(*a, [](tm::TxScope& tx) { tx.write(0, 1); });
  });
  // Give the holder time to reach the paused write-back window.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto result = tm::run_tx(*b, [](tm::TxScope& tx) { tx.write(0, 2); });
  holder.join();
  // Either b lost the lock race (aborted) or it finished before/after the
  // window; in the abort case the lock-fail counter ticks.
  if (result == TxResult::kAborted) {
    EXPECT_GE(tmi2.stats().total(rt::Counter::kTxLockFail), 1u);
  }
  (void)s0;
  (void)s1;
}

TEST(Tl2, NtWriteDoesNotBumpVersion) {
  // The doomed-transaction enabler: NT writes are invisible to TL2's
  // validation. A transaction that read x before an NT write of x still
  // commits.
  Tl2 tmi(config());
  auto s0 = tmi.make_thread(0, nullptr);
  auto s1 = tmi.make_thread(1, nullptr);

  ASSERT_TRUE(s0->tx_begin());
  hist::Value v = 0;
  ASSERT_TRUE(s0->tx_read(0, v));
  EXPECT_EQ(v, hist::kVInit);

  s1->nt_write(0, 42);  // uninstrumented

  // Re-reading inside the transaction now returns the NT value and does
  // NOT abort — exactly the doomed-transaction mechanism of Fig 1(b).
  ASSERT_TRUE(s0->tx_read(0, v));
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(s0->tx_commit(), TxResult::kCommitted);
}

TEST(Tl2, AbortedTransactionLeavesNoTrace) {
  Tl2 tmi(config());
  auto s0 = tmi.make_thread(0, nullptr);
  auto s1 = tmi.make_thread(1, nullptr);
  ASSERT_TRUE(s0->tx_begin());
  hist::Value v = 0;
  ASSERT_TRUE(s0->tx_read(0, v));
  ASSERT_TRUE(s0->tx_write(3, 99));
  ASSERT_EQ(tm::run_tx(*s1, [](tm::TxScope& tx) { tx.write(0, 5); }),
            TxResult::kCommitted);
  ASSERT_EQ(s0->tx_commit(), TxResult::kAborted);
  EXPECT_EQ(tmi.peek(3), hist::kVInit);
  // The next transaction of s0 starts fresh and succeeds.
  EXPECT_EQ(tm::run_tx(*s0, [](tm::TxScope& tx) { tx.write(3, 100); }),
            TxResult::kCommitted);
  EXPECT_EQ(tmi.peek(3), 100u);
}

TEST(Tl2, RecorderSeesPublishOrder) {
  Tl2 tmi(config());
  hist::Recorder recorder;
  auto session = tmi.make_thread(0, &recorder);
  tm::run_tx(*session, [](tm::TxScope& tx) { tx.write(0, 5); });
  tm::run_tx(*session, [](tm::TxScope& tx) { tx.write(0, 6); });
  session->nt_write(0, 7);
  const auto exec = recorder.collect();
  ASSERT_EQ(exec.publish_order.at(0),
            (std::vector<hist::Value>{5, 6, 7}));
  EXPECT_EQ(exec.history.txns().size(), 2u);
  EXPECT_EQ(exec.history.nt_accesses().size(), 1u);
}

TEST(Tl2, WritebackIsFirstWriteProgramOrder) {
  // A transaction writing x then y flushes x before y (observed via the
  // recorder's publish order), so Fig 3's postcondition catches torn
  // visibility.
  Tl2 tmi(config());
  hist::Recorder recorder;
  auto session = tmi.make_thread(0, &recorder);
  tm::run_tx(*session, [](tm::TxScope& tx) {
    tx.write(2, 21);
    tx.write(1, 11);
    tx.write(2, 22);  // duplicate: final value 22, position of first write
  });
  const auto exec = recorder.collect();
  // Publish order across registers: register 2 (first written) before 1.
  // Reconstruct the global publish sequence from per-register orders by
  // peeking at history... simpler: check values.
  EXPECT_EQ(exec.publish_order.at(2), (std::vector<hist::Value>{22}));
  EXPECT_EQ(exec.publish_order.at(1), (std::vector<hist::Value>{11}));
  EXPECT_EQ(tmi.peek(2), 22u);
}

TEST(Tl2, ManyThreadsManyRegistersStress) {
  Tl2 tmi(config(32));
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto session = tmi.make_thread(t, nullptr);
      rt::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 31 + 1);
      for (int i = 0; i < 2000; ++i) {
        tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
          const auto r1 = static_cast<hist::RegId>(rng.below(32));
          const auto r2 = static_cast<hist::RegId>(rng.below(32));
          const hist::Value v = tx.read(r1);
          tx.write(r2, v + rng.below(1000) + 1);
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_GE(tmi.stats().total(rt::Counter::kTxCommit),
            static_cast<std::uint64_t>(kThreads) * 2000);
}

}  // namespace
}  // namespace privstm
