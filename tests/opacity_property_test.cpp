// Property suite (experiment E11): randomized programs and schedules,
// recorded and fed through the full strong-opacity pipeline.
//
//  * Pure transactional workloads (no NT accesses): histories are trivially
//    DRF, so every TL2/NOrec/glock history must pass consistency, graph
//    acyclicity, serialization and Hatomic membership — the §7 theorem,
//    sampled.
//  * Mixed privatization workloads (Fig 1a-shaped, fenced): DRF histories
//    must pass; racy classifications must not occur.
//  * A deliberately broken TL2 (commit validation skipped) must be caught
//    by the checker — the suite can actually detect unsound TMs.
#include <gtest/gtest.h>

#include <thread>

#include "history/wellformed.hpp"
#include "lang/litmus.hpp"
#include "opacity/strong_opacity.hpp"
#include "runtime/barrier.hpp"
#include "runtime/rng.hpp"
#include "test_helpers.hpp"
#include "tm/factory.hpp"

namespace privstm {
namespace {

using tm::TmConfig;
using tm::TmKind;

struct WorkloadParams {
  TmKind kind;
  std::size_t threads;
  std::size_t registers;
  std::size_t txns_per_thread;
  std::size_t accesses_per_txn;
  std::uint64_t seed;
};

/// Run a random pure-transactional workload, recording the execution.
hist::RecordedExecution run_transactional_workload(const WorkloadParams& p) {
  TmConfig config;
  config.num_registers = p.registers;
  auto tmi = tm::make_tm(p.kind, config);
  hist::Recorder recorder;
  rt::SpinBarrier barrier(p.threads);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < p.threads; ++t) {
    workers.emplace_back([&, t] {
      auto session = tmi->make_thread(static_cast<hist::ThreadId>(t),
                                      &recorder);
      rt::Xoshiro256 rng(p.seed * 1000003 + t);
      // Unique value tags: (thread+1) << 32 | seq.
      hist::Value seq = 0;
      barrier.arrive_and_wait();
      for (std::size_t i = 0; i < p.txns_per_thread; ++i) {
        tm::run_tx(*session, [&](tm::TxScope& tx) {
          for (std::size_t k = 0; k < p.accesses_per_txn; ++k) {
            const auto reg =
                static_cast<hist::RegId>(rng.below(p.registers));
            if (rng.chance(1, 2)) {
              (void)tx.read(reg);
            } else {
              tx.write(reg, ((static_cast<hist::Value>(t) + 1) << 32) |
                                ++seq);
            }
          }
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  return recorder.collect();
}

class PureTransactional
    : public ::testing::TestWithParam<std::tuple<TmKind, std::uint64_t>> {};

TEST_P(PureTransactional, RecordedHistoryStronglyOpaque) {
  const auto [kind, seed] = GetParam();
  WorkloadParams params{kind, 4, 6, 40, 3, seed};
  const auto exec = run_transactional_workload(params);
  ASSERT_TRUE(hist::check_wellformed(exec.history).ok())
      << hist::check_wellformed(exec.history).to_string();
  const auto verdict = opacity::check_strong_opacity(exec);
  EXPECT_FALSE(verdict.racy);  // no NT accesses ⇒ no races possible
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();
  EXPECT_TRUE(verdict.hb_dep_irreflexive) << verdict.hb_dep_counterexample;
  EXPECT_TRUE(verdict.txn_projection_acyclic);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PureTransactional,
    ::testing::Combine(::testing::ValuesIn(tm::all_tm_kinds()),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const auto& info) {
      return std::string(tm::tm_kind_name(std::get<0>(info.param))) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

class FencedPrivatization : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FencedPrivatization, LitmusSweepStronglyOpaque) {
  // Fenced Fig 1a / 1b / RO litmus programs on TL2, many seeds: recorded
  // histories must be DRF (the fence synchronizes) or — if the scheduler
  // produced no conflict — trivially fine; never an opacity violation.
  for (const auto& spec :
       {lang::make_fig1a(true), lang::make_fig1b(true),
        lang::make_fig_ro(true)}) {
    lang::LitmusRunOptions options;
    options.runs = 40;
    options.seed = GetParam() * 7919;
    options.jitter_max_spins = 200;
    options.commit_pause_spins = 100;
    options.check_strong_opacity = true;
    const auto stats = lang::run_litmus(spec, TmKind::kTl2,
                                        tm::FencePolicy::kSelective, options);
    EXPECT_EQ(stats.opacity_violations, 0u)
        << spec.name << ": " << stats.first_violation_detail;
    EXPECT_EQ(stats.postcondition_violations, 0u) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FencedPrivatization,
                         ::testing::Values(1u, 2u, 3u));

// ---------------------------------------------------------------------------
// Randomized privatization-protocol family: one privatizer thread claims
// data slots (transactional flag write + fence + NT data write); mutator
// threads write a slot's data transactionally only while its flag is clear.
// DRF by construction — every recorded TL2 history must pass the pipeline.
// ---------------------------------------------------------------------------

struct ProtocolParams {
  std::size_t mutators;
  std::size_t slots;
  std::uint64_t seed;
};

hist::RecordedExecution run_privatization_protocol(const ProtocolParams& p) {
  tm::TmConfig config;
  config.num_registers = 2 * p.slots;  // flags then data
  config.commit_pause_spins = 64;
  auto tmi = tm::make_tm(TmKind::kTl2, config);
  hist::Recorder recorder;
  rt::SpinBarrier barrier(p.mutators + 1);
  std::vector<std::thread> workers;

  // Privatizer: thread 0.
  workers.emplace_back([&] {
    auto session = tmi->make_thread(0, &recorder);
    rt::Xoshiro256 rng(p.seed);
    hist::Value tag = 0;
    barrier.arrive_and_wait();
    for (std::size_t j = 0; j < p.slots; ++j) {
      const auto flag = static_cast<hist::RegId>(j);
      const auto data = static_cast<hist::RegId>(p.slots + j);
      const auto result = tm::run_tx(*session, [&](tm::TxScope& tx) {
        tx.write(flag, (hist::Value{1} << 40) | ++tag);
      });
      if (result == tm::TxResult::kCommitted) {
        session->fence();
        session->nt_write(data, (hist::Value{1} << 40) | ++tag);
      }
    }
  });

  for (std::size_t m = 1; m <= p.mutators; ++m) {
    workers.emplace_back([&, m] {
      auto session = tmi->make_thread(static_cast<hist::ThreadId>(m),
                                      &recorder);
      rt::Xoshiro256 rng(p.seed * 131 + m);
      hist::Value tag = 0;
      barrier.arrive_and_wait();
      for (int round = 0; round < 25; ++round) {
        const std::size_t j = rng.below(p.slots);
        const auto flag = static_cast<hist::RegId>(j);
        const auto data = static_cast<hist::RegId>(p.slots + j);
        tm::run_tx(*session, [&](tm::TxScope& tx) {
          if (tx.read(flag) == 0) {
            tx.write(data, ((static_cast<hist::Value>(m) + 1) << 40) | ++tag);
          }
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  return recorder.collect();
}

class PrivatizationProtocol
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(PrivatizationProtocol, RecordedHistoryPassesPipeline) {
  const auto [mutators, seed] = GetParam();
  const ProtocolParams params{mutators, 4, seed};
  const auto exec = run_privatization_protocol(params);
  ASSERT_TRUE(hist::check_wellformed(exec.history).ok())
      << hist::check_wellformed(exec.history).to_string();
  const auto verdict = opacity::check_strong_opacity(exec);
  // The protocol is DRF by construction; the fence makes every conflict
  // hb-ordered, so racy classifications would indicate an hb bug.
  EXPECT_FALSE(verdict.racy) << verdict.races.to_string(exec.history);
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrivatizationProtocol,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(10u, 20u, 30u)));

TEST(CheckerSensitivity, SerializabilityViolationCaught) {
  // Hand-build the recorded execution of an unsound TM: two transactions
  // that each read the other's pre-state and both commit (write skew on a
  // single register pair is not serializable with these reads).
  using namespace privstm::testing;
  // T0: reads x1=vinit, writes x0=1. T1: reads x0=vinit, writes x1=2.
  // Sequential real-time order T0 then T1 — T1's vinit read of x0 is then
  // inconsistent with T0's committed write.
  std::vector<hist::Action> a;
  a.insert(a.end(),
           {hist::Action{0, 0, hist::ActionKind::kTxBegin},
            hist::Action{0, 0, hist::ActionKind::kOk},
            hist::Action{0, 0, hist::ActionKind::kReadReq, 1},
            hist::Action{0, 0, hist::ActionKind::kReadRet, 1, hist::kVInit},
            hist::Action{0, 0, hist::ActionKind::kWriteReq, 0, 1},
            hist::Action{0, 0, hist::ActionKind::kWriteRet, 0},
            hist::Action{0, 0, hist::ActionKind::kTxCommit},
            hist::Action{0, 0, hist::ActionKind::kCommitted},
            hist::Action{0, 1, hist::ActionKind::kTxBegin},
            hist::Action{0, 1, hist::ActionKind::kOk},
            hist::Action{0, 1, hist::ActionKind::kReadReq, 0},
            hist::Action{0, 1, hist::ActionKind::kReadRet, 0, hist::kVInit},
            hist::Action{0, 1, hist::ActionKind::kWriteReq, 1, 2},
            hist::Action{0, 1, hist::ActionKind::kWriteRet, 1},
            hist::Action{0, 1, hist::ActionKind::kTxCommit},
            hist::Action{0, 1, hist::ActionKind::kCommitted}});
  hist::RecordedExecution exec;
  exec.history = hist::make_history(a);
  exec.publish_order[0] = {1};
  exec.publish_order[1] = {2};
  const auto verdict = opacity::check_strong_opacity(exec);
  EXPECT_FALSE(verdict.ok()) << verdict.to_string();
  EXPECT_FALSE(verdict.racy);
  EXPECT_FALSE(verdict.txn_projection_acyclic);
}

TEST(CheckerSensitivity, DelayedCommitShapeCaughtWhenDrf) {
  // The delayed-commit anomaly *with* a fence in the history (so it is
  // DRF): T2 writes x after ν in memory order although the fence ordered
  // T2 before ν — the graph has a WW/HB cycle and the checker flags it.
  using namespace privstm::testing;
  std::vector<hist::Action> a;
  // T2 (thread 1): reads flag=0, writes x=42, commits.
  a.insert(a.end(), {txbegin(1), ok(1), rreq(1, 0), rret(1, 0, 0),
                     wreq(1, 1, 42), wret(1, 1), txcommit(1), committed(1)});
  // T1 (thread 0): privatizes flag, fence, ν writes x=1.
  append(a, txn_write(0, 0, 7));
  append(a, fence(0));
  append(a, nt_write(0, 1, 9));
  hist::RecordedExecution exec;
  exec.history = hist::make_history(a);
  exec.publish_order[0] = {7};
  // The anomaly: T2's write to x hits memory AFTER ν's (delayed commit).
  exec.publish_order[1] = {9, 42};
  const auto verdict = opacity::check_strong_opacity(exec);
  EXPECT_FALSE(verdict.racy) << verdict.races.to_string(exec.history);
  EXPECT_FALSE(verdict.ok()) << verdict.to_string();
}

}  // namespace
}  // namespace privstm
