// Interpreter tests: expression/command semantics, atomic-block results,
// abort roll-back (§A.2), probes, and recorded histories of executions.
#include <gtest/gtest.h>

#include "history/wellformed.hpp"
#include "lang/interp.hpp"
#include "tm/factory.hpp"

namespace privstm {
namespace {

using namespace privstm::lang;

std::unique_ptr<tm::TransactionalMemory> glock(std::size_t regs) {
  tm::TmConfig config;
  config.num_registers = regs;
  return tm::make_tm(tm::TmKind::kGlobalLock, config);
}

TEST(Expr, Arithmetic) {
  std::vector<Value> locals{10, 3};
  EXPECT_EQ(eval(*add(var(0), var(1)), locals), 13u);
  EXPECT_EQ(eval(*sub(var(0), var(1)), locals), 7u);
  EXPECT_EQ(eval(*mul(var(0), var(1)), locals), 30u);
  EXPECT_EQ(eval(*bit_or(var(0), constant(5)), locals), 15u);
  EXPECT_EQ(eval(*constant(7), locals), 7u);
}

TEST(BExpr, Comparisons) {
  std::vector<Value> locals{10, 3};
  EXPECT_TRUE(eval(*eq(var(0), constant(10)), locals));
  EXPECT_TRUE(eval(*ne(var(0), var(1)), locals));
  EXPECT_TRUE(eval(*lt(var(1), var(0)), locals));
  EXPECT_TRUE(eval(*le(var(1), constant(3)), locals));
  EXPECT_TRUE(eval(*bnot(eq(var(0), var(1))), locals));
  EXPECT_TRUE(eval(*band(btrue(), btrue()), locals));
  EXPECT_TRUE(eval(*bor(eq(var(0), var(1)), btrue()), locals));
}

TEST(Interp, StraightLineProgram) {
  ThreadBuilder b;
  const VarId x = b.local("x");
  const VarId y = b.local("y");
  Program p;
  p.num_registers = 1;
  p.threads.push_back(std::move(b).finish(
      seq({assign(x, constant(5)), assign(y, add(var(x), constant(2)))})));
  auto tmi = glock(1);
  const auto result = execute(p, *tmi, {.record = false});
  EXPECT_EQ(result.locals[0][0], 5u);
  EXPECT_EQ(result.locals[0][1], 7u);
}

TEST(Interp, IfAndWhile) {
  ThreadBuilder b;
  const VarId i = b.local("i");
  const VarId acc = b.local("acc");
  const VarId branch = b.local("branch");
  Program p;
  p.num_registers = 1;
  p.threads.push_back(std::move(b).finish(seq({
      whileloop(lt(var(i), constant(5)),
                seq({assign(acc, add(var(acc), var(i))),
                     assign(i, add(var(i), constant(1)))})),
      ifelse(eq(var(acc), constant(10)), assign(branch, constant(1)),
             assign(branch, constant(2))),
  })));
  auto tmi = glock(1);
  const auto result = execute(p, *tmi, {.record = false});
  EXPECT_EQ(result.locals[0][1], 10u);  // 0+1+2+3+4
  EXPECT_EQ(result.locals[0][2], 1u);
}

TEST(Interp, AtomicBlockCommitsAndWrites) {
  ThreadBuilder b;
  const VarId l = b.local("l");
  Program p;
  p.num_registers = 2;
  p.threads.push_back(
      std::move(b).finish(atomic(l, seq({write(0, 11), write(1, 22)}))));
  auto tmi = glock(2);
  const auto result = execute(p, *tmi, {.record = false});
  EXPECT_EQ(result.locals[0][0], kCommitted);
  EXPECT_EQ(result.registers[0], 11u);
  EXPECT_EQ(result.registers[1], 22u);
}

TEST(Interp, NtAccessesOutsideTransactions) {
  ThreadBuilder b;
  const VarId v = b.local("v");
  Program p;
  p.num_registers = 1;
  p.threads.push_back(
      std::move(b).finish(seq({write(0, 9), read(v, 0)})));
  auto tmi = glock(1);
  const auto result = execute(p, *tmi, {.record = false});
  EXPECT_EQ(result.locals[0][0], 9u);
}

TEST(Interp, AbortRollsBackLocalsButNotProbes) {
  // Force an abort via TL2: a transaction whose read set is invalidated by
  // a concurrent committer. Deterministic single-thread variant: use the
  // explorer-tested roll-back path by... simpler: run on TL2 with a
  // colliding two-thread program many times; aborted attempts must not
  // leak local assignments, while probes persist.
  ThreadBuilder b;
  const VarId l = b.local("l");
  const VarId tmp = b.local("tmp");
  Program p;
  p.num_registers = 1;
  // atomic { tmp := 7; probe0 := 3 } — always commits; locals keep tmp.
  p.threads.push_back(std::move(b).finish(
      atomic(l, seq({assign(tmp, constant(7)), probe(0, constant(3))}))));
  auto tmi = glock(1);
  const auto result = execute(p, *tmi, {.record = false});
  EXPECT_EQ(result.locals[0][1], 7u);
  EXPECT_EQ(result.probes[0][0], 3u);
  EXPECT_EQ(result.locals[0][0], kCommitted);
}

TEST(Interp, ComputedRegisterAddressing) {
  ThreadBuilder b;
  const VarId i = b.local("i");
  const VarId l = b.local("l");
  Program p;
  p.num_registers = 4;
  // for i in 0..3: x[i].write(100+i) — NT; then read x[2].
  p.threads.push_back(std::move(b).finish(seq({
      whileloop(lt(var(i), constant(4)),
                seq({write(var(i), add(constant(100), var(i))),
                     assign(i, add(var(i), constant(1)))})),
      read(l, constant(2)),
  })));
  auto tmi = glock(4);
  const auto result = execute(p, *tmi, {.record = false});
  EXPECT_EQ(result.locals[0][1], 102u);
  EXPECT_EQ(result.registers[3], 103u);
}

TEST(Interp, LoopBoundSafetyNet) {
  ThreadBuilder b;
  const VarId i = b.local("i");
  Program p;
  p.num_registers = 1;
  p.threads.push_back(std::move(b).finish(
      whileloop(btrue(), assign(i, add(var(i), constant(1))))));
  auto tmi = glock(1);
  ExecOptions options;
  options.record = false;
  options.max_loop_iterations = 100;
  const auto result = execute(p, *tmi, options);
  EXPECT_TRUE(result.loop_bound_hit);
}

TEST(Interp, RecordedHistoryIsWellFormed) {
  ThreadBuilder b0;
  const VarId l = b0.local("l");
  ThreadBuilder b1;
  const VarId m = b1.local("m");
  Program p;
  p.num_registers = 2;
  p.threads.push_back(std::move(b0).finish(
      seq({atomic(l, seq({write(0, 5), write(1, 6)})), fence_cmd()})));
  p.threads.push_back(std::move(b1).finish(
      atomic(m, seq({read(m, 0)}))));  // note: result overwritten by read
  auto tmi = glock(2);
  const auto result = execute(p, *tmi, {.record = true});
  const auto report = hist::check_wellformed(result.recorded.history);
  EXPECT_TRUE(report.ok()) << report.to_string()
                           << result.recorded.history.to_string();
  EXPECT_FALSE(result.recorded.history.empty());
}

TEST(Interp, JitterKeepsSemantics) {
  ThreadBuilder b;
  const VarId l = b.local("l");
  Program p;
  p.num_registers = 1;
  p.threads.push_back(std::move(b).finish(atomic(l, write(0, 77))));
  auto tmi = glock(1);
  ExecOptions options;
  options.record = false;
  options.jitter_max_spins = 64;
  const auto result = execute(p, *tmi, options);
  EXPECT_EQ(result.registers[0], 77u);
}

TEST(Interp, ToStringRendersProgram) {
  ThreadBuilder b;
  const VarId l = b.local("l");
  const VarId h = b.local("h");
  const CmdPtr body = seq({atomic(l, seq({write(0, 5), read(l, 0)})),
                           fence_cmd(), probe(1, constant(2)),
                           alloc_cmd(h, 4), free_cmd(h)});
  const std::string text = to_string(*body);
  EXPECT_NE(text.find("atomic"), std::string::npos);
  EXPECT_NE(text.find("fence"), std::string::npos);
  EXPECT_NE(text.find("probe[1]"), std::string::npos);
  EXPECT_NE(text.find("alloc(4)"), std::string::npos);
  EXPECT_NE(text.find("free("), std::string::npos);
}

TEST(Interp, AllocFreeDrivesTheRealHeapAndRecords) {
  // End to end on a real TM: alloc grows the heap past the static
  // prefix, handle-indexed accesses hit the allocated cells (both
  // transactionally and not), free retires the block, and the recorded
  // history carries the alloc/free actions with the right block
  // geometry.
  ThreadBuilder b;
  const VarId h = b.local("h");
  const VarId l = b.local("l");
  const VarId v0 = b.local("v0");
  const VarId v1 = b.local("v1");
  Program p;
  p.num_registers = 2;
  p.threads.push_back(std::move(b).finish(
      seq({alloc_cmd(h, 2),
           atomic(l, seq({write_at(h, 0, 31), read_at(v0, h, 0)})),
           write_at(h, 1, 32),  // NT
           read_at(v1, h, 1),   // NT
           free_cmd(h)})));
  auto tmi = glock(2);
  const auto result = execute(p, *tmi, {.record = true});

  const Value base = result.locals[0][0];
  EXPECT_GE(base, 2u);  // past the static prefix
  EXPECT_EQ(result.locals[0][2], 31u);
  EXPECT_EQ(result.locals[0][3], 32u);
  EXPECT_EQ(tmi->heap().free_count(), 1u);
  // The program's free has (at the latest) been retired by the worker's
  // thread-exit flush — no transactions were active — so the cells are
  // back to vinit and the block is reusable.
  tmi->heap().drain_limbo();
  EXPECT_EQ(tmi->peek(static_cast<RegId>(base)), hist::kVInit);
  EXPECT_EQ(tmi->heap().limbo_size(), 0u);

  const auto report = hist::check_wellformed(result.recorded.history);
  EXPECT_TRUE(report.ok()) << report.to_string();
  const auto freed = hist::freed_blocks(result.recorded.history);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0].base, static_cast<RegId>(base));
  EXPECT_EQ(freed[0].size, 2u);
}

}  // namespace
}  // namespace privstm
