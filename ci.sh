#!/usr/bin/env bash
# Tier-1 verification plus a benchmark smoke run — what CI executes and
# what a contributor should run before pushing.
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

# Smoke-run the throughput matrix (writes BENCH_tm_throughput.quick.json;
# the committed full matrix comes from a run without --quick).
./build/bench_tm_throughput --quick

# Smoke-run the multi-privatizer fence matrix (writes
# BENCH_fence_overhead.quick.json). --check fails the run if the coalesced
# grace-period engine regresses below the per-fence-scan mode.
./build/bench_fence_overhead --quick --check
