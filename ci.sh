#!/usr/bin/env bash
# Tier-1 verification plus a benchmark smoke run — what CI executes and
# what a contributor should run before pushing.
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j"$(nproc)"

# Checker-blindness gate, before anything else: the deliberately-unfenced
# use-after-free litmus MUST be flagged racy (with the races attributed to
# the freed block) by the explorer+DRF pipeline. Zero reported violations
# would mean reclamation coverage silently went blind — fail fast. The
# grep guards the guard: gtest exits 0 when a filter matches nothing, so
# a renamed test must fail here rather than pass vacuously.
./build/privstm_tests \
  --gtest_filter='ReclamationExplorer.UnfencedScenariosAreRacyOnFreedBlocksOnly' \
  | tee /dev/stderr | grep -q '\[  PASSED  \] 1 test'

# Fault-injection smoke gate, same shape: the seeded injector must actually
# fire (kFaultInjected > 0 is asserted inside the test — "the plan's rates
# must actually fire") and replay identically. An injection suite that
# injects nothing would leave the whole conformance matrix vacuous.
./build/privstm_tests \
  --gtest_filter='FaultInjection.SingleSessionWorkloadReplaysExactly' \
  | tee /dev/stderr | grep -q '\[  PASSED  \] 1 test'

ctest --test-dir build --output-on-failure -j"$(nproc)"

# Smoke-run the throughput matrix (writes BENCH_tm_throughput.quick.json;
# the committed full matrix comes from a run without --quick). The quick
# run also self-asserts that the alloc-free / mixed-churn cells retired at
# least one batched-limbo grace period (Counter::kLimboBatchRetired > 0)
# and that the mixed-churn cells stole at least one block from a sibling
# shard (Counter::kAllocShardSteal > 0) — failing CI if deferred
# reclamation stops flowing in batches or the sharded free store silently
# degenerates to never-stealing (i.e. the steal tier stopped running in
# front of the central lock).
./build/bench_tm_throughput --quick

# Smoke-run the multi-privatizer fence matrix (writes
# BENCH_fence_overhead.quick.json). --check fails the run if the coalesced
# grace-period engine regresses below the per-fence-scan mode.
./build/bench_fence_overhead --quick --check

# Smoke-run the session-service macro-benchmark (writes
# BENCH_service.quick.json). The quick run self-asserts that every
# backend × fence-mode cell's expiry sweeps retired sessions, that every
# op class reported monotone percentiles, that no payload read was
# inconsistent, and that the traced cell's conflict heat map is non-empty
# — then the grep double-checks the percentile telemetry actually reached
# the JSON (a schema refactor that drops the field must fail here, not in
# the next PR's analysis). The trace artifacts land in build/ — benchmark
# output must never dirty the source tree (it once got committed).
./build/bench_service --quick --trace build/TRACE_service.quick.json
grep -q '"p999"' BENCH_service.quick.json

# Adaptive-governor smoke gate (DESIGN.md §14): the quick service run is
# governed, so the schema-3 JSON must carry a governor block whose epoch
# and shift counts are nonzero (the feedback loop actually evaluated and
# actually moved the policy), and the Perfetto dump must carry the
# policy-shift instants. A refactor that detaches the governor from the
# store, or stops emitting its decisions, must fail here.
grep -q '"governor":' BENCH_service.quick.json
grep -Eq '"epochs": [1-9]' BENCH_service.quick.json
grep -Eq '"shifts": [1-9]' BENCH_service.quick.json
grep -q '"name": "governor_epoch"' build/TRACE_service.quick.json
grep -q '"name": "governor_shift"' build/TRACE_service.quick.json

# Trace/metrics smoke gate (DESIGN.md §13), over the artifacts the traced
# run just wrote: the Perfetto JSON must carry a privatization-fence span
# and a sweep-phase span, and the Prometheus exposition the canonical
# commit counter — a refactor that silently stops emitting any of them
# must fail here. The throughput side is covered by bench_tm_throughput's
# own self-gates above (tracing-disabled regression vs the matrix
# reference, tracing-enabled collapse vs the disabled cell); the last grep
# checks the embedded metrics snapshot reached the schema-6 perf log.
grep -q '"name": "fence"' build/TRACE_service.quick.json
grep -q '"name": "sweep_reclaim"' build/TRACE_service.quick.json
grep -q '^privstm_tx_commits_total' build/TRACE_service.quick.json.prom
grep -q '"metrics"' BENCH_tm_throughput.quick.json

# Source-tree hygiene gate: nothing above may leave trace artifacts in the
# repo root — they belong in build/ (which .gitignore's build*/ covers).
if compgen -G 'TRACE_*' > /dev/null; then
  echo 'FAIL: benchmark smoke left TRACE_* artifacts in the source root' >&2
  exit 1
fi

# ASan+UBSan gate over the transactional-heap paths: alloc/free, deferred
# reclamation, the ADTs that allocate through handles, the TM
# semantics/fence suites that drive them, and the handle-based litmus
# layer (ReclamationExplorer + ReclamationLitmus end to end, plus the
# explorer's canonical heap model) — language-driven alloc/free/reuse is
# exactly where the sanitizers pay for themselves. A focused ctest filter
# keeps the pass within CI budget; SKIP_ASAN=1 skips it for quick local
# iterations.
if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DPRIVSTM_SANITIZE=ON \
    -DPRIVSTM_BUILD_BENCH=OFF -DPRIVSTM_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan --output-on-failure -j"$(nproc)" \
    -R 'Heap|StripeTable|StripeRegion|Alloc|Adt|TmSemantics|Fence\.|Reclamation|Quiescence|ExplorerHandles|Interp\.AllocFree|Clock|Service|Histogram|Zipf|Adaptive'
fi

# ThreadSanitizer gate (third sanitizer config — TSan cannot coexist with
# ASan in one binary): the cross-thread synchronization paths this PR
# stresses hardest — the serial gate's close/drain/reopen handshake, the
# contention-manager storms, fault-injected backend commits, fences and
# quiescence, and the concurrent allocator. A focused filter keeps the
# (TSan-slowed) pass within CI budget; SKIP_TSAN=1 skips it locally.
if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DPRIVSTM_SANITIZE=thread \
    -DPRIVSTM_BUILD_BENCH=OFF -DPRIVSTM_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j"$(nproc)"
  ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
    -R 'Contention|StarvationStorm|RetryUnderInjection|FaultInj|Quiescence|Fence\.|Alloc|Adt|Clock|Service|Histogram|Zipf|Adaptive'
fi
