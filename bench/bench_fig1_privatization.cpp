// Experiments E1 (Fig 1a, delayed commit), E2 (Fig 1b, doomed transaction)
// and E10 (the GCC read-only-fence bug [43]).
//
// Paper-shape expectation (EXPERIMENTS.md):
//   * TL2 with no fence      → violations  > 0  (both Fig 1a and Fig 1b)
//   * TL2 with the fence     → violations == 0
//   * TL2 fence-always       → violations == 0 even for unfenced programs
//   * NOrec without fences   → violations == 0 (fence-free privatization)
//   * global lock            → violations == 0
//   * RO-bug: skip-after-RO  → violations  > 0; always → 0
#include "bench_common.hpp"

namespace privstm::bench {
namespace {

using lang::make_fig1a;
using lang::make_fig1b;
using lang::make_fig_ro;
using tm::FencePolicy;
using tm::TmKind;

constexpr std::size_t kRuns = 400;
constexpr std::uint32_t kPause = 4000;  // widen the delayed-commit window

void BM_Fig1a_TL2_NoFence(benchmark::State& state) {
  run_litmus_bench(state, make_fig1a(false), TmKind::kTl2, FencePolicy::kNone,
                   kRuns, kPause);
}
BENCHMARK(BM_Fig1a_TL2_NoFence)->Iterations(4)->Unit(benchmark::kMillisecond);

void BM_Fig1a_TL2_Fenced(benchmark::State& state) {
  run_litmus_bench(state, make_fig1a(true), TmKind::kTl2,
                   FencePolicy::kSelective, kRuns, kPause);
}
BENCHMARK(BM_Fig1a_TL2_Fenced)->Iterations(4)->Unit(benchmark::kMillisecond);

void BM_Fig1a_TL2_FenceAlways_UnfencedProgram(benchmark::State& state) {
  run_litmus_bench(state, make_fig1a(false), TmKind::kTl2,
                   FencePolicy::kAlways, kRuns, kPause);
}
BENCHMARK(BM_Fig1a_TL2_FenceAlways_UnfencedProgram)
    ->Iterations(4)
    ->Unit(benchmark::kMillisecond);

void BM_Fig1a_NOrec_NoFence(benchmark::State& state) {
  run_litmus_bench(state, make_fig1a(false), TmKind::kNOrec,
                   FencePolicy::kNone, kRuns, kPause);
}
BENCHMARK(BM_Fig1a_NOrec_NoFence)->Iterations(4)->Unit(benchmark::kMillisecond);

void BM_Fig1a_GlobalLock(benchmark::State& state) {
  run_litmus_bench(state, make_fig1a(false), TmKind::kGlobalLock,
                   FencePolicy::kNone, kRuns, kPause);
}
BENCHMARK(BM_Fig1a_GlobalLock)->Iterations(4)->Unit(benchmark::kMillisecond);

void BM_Fig1b_TL2_NoFence(benchmark::State& state) {
  // The doomed window is between T2's flag read and its x read: high
  // jitter (not commit pause) widens it.
  run_litmus_bench(state, make_fig1b(false), TmKind::kTl2, FencePolicy::kNone,
                   kRuns, /*commit_pause=*/512, /*jitter=*/4096);
}
BENCHMARK(BM_Fig1b_TL2_NoFence)->Iterations(4)->Unit(benchmark::kMillisecond);

void BM_Fig1b_TL2_Fenced(benchmark::State& state) {
  run_litmus_bench(state, make_fig1b(true), TmKind::kTl2,
                   FencePolicy::kSelective, kRuns, /*commit_pause=*/512);
}
BENCHMARK(BM_Fig1b_TL2_Fenced)->Iterations(4)->Unit(benchmark::kMillisecond);

void BM_Fig1b_NOrec_NoFence(benchmark::State& state) {
  run_litmus_bench(state, make_fig1b(false), TmKind::kNOrec,
                   FencePolicy::kNone, kRuns, /*commit_pause=*/512);
}
BENCHMARK(BM_Fig1b_NOrec_NoFence)->Iterations(4)->Unit(benchmark::kMillisecond);

void BM_FigRO_TL2_SkipAfterReadOnly(benchmark::State& state) {
  run_litmus_bench(state, make_fig_ro(false), TmKind::kTl2,
                   FencePolicy::kSkipAfterReadOnly, kRuns, kPause);
}
BENCHMARK(BM_FigRO_TL2_SkipAfterReadOnly)
    ->Iterations(4)
    ->Unit(benchmark::kMillisecond);

void BM_FigRO_TL2_FenceAlways(benchmark::State& state) {
  run_litmus_bench(state, make_fig_ro(false), TmKind::kTl2,
                   FencePolicy::kAlways, kRuns, kPause);
}
BENCHMARK(BM_FigRO_TL2_FenceAlways)
    ->Iterations(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace privstm::bench
