// ADT-level benchmark: the payoff of the paper's programming model at the
// data-structure level (extension of E8).
//
// Full-table iteration of a transactional hash map, two ways:
//   * one giant read-only transaction touching every slot — on TL2 any
//     concurrent committed write invalidates it (retry storms as the table
//     or write rate grows);
//   * the privatized idiom (freeze → fence → NT scan → publish), which
//     pays one fence and brief writer back-off instead.
// Plus baseline put/get mixes per TM.
#include "bench_common.hpp"

#include "adt/tx_hashmap.hpp"

namespace privstm::bench {
namespace {

using adt::TxHashMap;
using tm::TmKind;

constexpr std::size_t kCapacity = 128;
constexpr std::size_t kKeys = 48;

struct MapHarness {
  std::unique_ptr<tm::TransactionalMemory> tmi;
  TxHashMap map;

  explicit MapHarness(TmKind kind)
      : tmi(tm::make_tm(kind, tm::TmConfig{})), map(*tmi, kCapacity) {
    auto setup = tmi->make_thread(0, nullptr);
    for (tm::Value k = 1; k <= kKeys; ++k) {
      map.put(*setup, k, k);
    }
  }
};

void BM_HashMapPutGet(benchmark::State& state) {
  TmKind kind;
  switch (state.range(0)) {
    case 0:
      kind = TmKind::kTl2;
      break;
    case 1:
      kind = TmKind::kNOrec;
      break;
    default:
      kind = TmKind::kGlobalLock;
      break;
  }
  const auto threads = static_cast<std::size_t>(state.range(1));
  MapHarness harness(kind);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    parallel_phase(threads, [&](std::size_t t) {
      auto session = harness.tmi->make_thread(
          static_cast<hist::ThreadId>(t), nullptr);
      rt::Xoshiro256 rng(t * 101 + 7);
      tm::Value gen = 1;
      for (int i = 0; i < 2000; ++i) {
        const tm::Value key = 1 + rng.below(kKeys);
        if (rng.chance(3, 4)) {
          benchmark::DoNotOptimize(harness.map.get(*session, key));
        } else {
          harness.map.put(*session, key, key * ++gen);
        }
      }
    });
    ops += threads * 2000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.SetLabel(tm::tm_kind_name(kind));
}
BENCHMARK(BM_HashMapPutGet)
    ->ArgsProduct({{0, 1, 2}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);

/// Iteration strategies under a concurrent writer.
template <bool kPrivatized>
void iteration_bench(benchmark::State& state) {
  MapHarness harness(TmKind::kTl2);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> writer_ops{0};
  std::thread writer([&] {
    auto session = harness.tmi->make_thread(1, nullptr);
    rt::Xoshiro256 rng(55);
    tm::Value gen = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      const tm::Value key = 1 + rng.below(kKeys);
      harness.map.put(*session, key, key * ++gen);
      writer_ops.fetch_add(1, std::memory_order_relaxed);
    }
  });

  auto session = harness.tmi->make_thread(0, nullptr);
  std::uint64_t scans = 0;
  std::uint64_t entries = 0;
  tm::Value token = 1;
  for (auto _ : state) {
    if constexpr (kPrivatized) {
      harness.map.for_each_privatized(
          *session, (tm::Value{9} << 40) | ++token,
          [&](tm::Value, tm::Value) { ++entries; });
    } else {
      // One giant read-only transaction over all slots (keys AND values,
      // like for_each does) — every concurrent value update invalidates it.
      tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
        std::uint64_t local = 0;
        for (std::size_t slot = 0; slot < kCapacity; ++slot) {
          const tm::Value k = tx.read(harness.map.key_loc(slot));
          if (k != 0 && k != TxHashMap::kTombstone) {
            benchmark::DoNotOptimize(tx.read(harness.map.value_loc(slot)));
            ++local;
          }
        }
        entries += local;
      });
    }
    ++scans;
  }
  stop.store(true);
  writer.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(scans));
  state.counters["writer_ops"] = static_cast<double>(writer_ops.load());
  state.counters["aborts"] = static_cast<double>(
      harness.tmi->stats().total(rt::Counter::kTxAbort));
  state.counters["entries_seen"] = static_cast<double>(entries);
}

void BM_Iteration_GiantTxn(benchmark::State& state) {
  iteration_bench<false>(state);
}
void BM_Iteration_Privatized(benchmark::State& state) {
  iteration_bench<true>(state);
}

BENCHMARK(BM_Iteration_GiantTxn)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime()
    ->Iterations(2000);
BENCHMARK(BM_Iteration_Privatized)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime()
    ->Iterations(2000);

}  // namespace
}  // namespace privstm::bench
