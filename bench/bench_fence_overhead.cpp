// Experiment E6 — the cost of conservative fencing (Yoo et al. [42]) —
// and E14 — coalesced multi-privatizer fence throughput.
//
// E6 reproduces the *shape* of Yoo et al.'s measurement (fencing every
// transaction costs 32 % on average, up to 107 %): the same transactional
// mix under FencePolicy::{kNone, kAlways, kSkipAfterReadOnly}, reported as
// google-benchmark cases with an `overhead_vs_none`-style counter set.
//
// E14 is the headline experiment of the quiescence subsystem (DESIGN.md
// §5): against background transaction churn, N privatizer threads run
// claim-then-fence privatization rounds, and we measure aggregate fence
// throughput under
//   * "scan"      — per-fence-scan engine (FenceMode::kEpochCounter): every
//                   fence snapshots the registry and waits out its own
//                   grace period on the round's critical path; N concurrent
//                   privatizers pay N redundant scans and N redundant
//                   waits, and the blocking API caps each thread at one
//                   fence per grace period;
//   * "coalesced" — the same blocking fence() over shared grace periods
//                   (FenceMode::kGracePeriodEpoch): concurrent fences ride
//                   one registry scan per grace period;
//   * "async"     — the coalesced engine driven through fence_async():
//                   each privatizer keeps a depth-3 pipeline of tickets in
//                   flight, so grace periods elapse underneath subsequent
//                   claims and a thread retires several fences per grace
//                   period — the deferred-privatization idiom.
// The sweep persists BENCH_fence_overhead.json (fences/s per mode × thread
// count plus the coalesced-engine/scan ratios at the top thread count) so
// the perf trajectory is comparable across PRs.
//
// This binary has its own main(): it always runs the E14 sweep (and with
// `--quick` only that, against smaller sizes, writing the .quick.json
// variant — the CI smoke configuration). `--check` exits nonzero if the
// coalesced mode regresses below the per-fence-scan mode at the top
// measured thread count — the CI regression gate for the subsystem.
#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/backoff.hpp"

namespace privstm::bench {
namespace {

using tm::FencePolicy;
using tm::TmKind;

// ---------------------------------------------------------------------------
// E6: policy sweep (google-benchmark cases, unchanged shape).
// ---------------------------------------------------------------------------

void run_mix_under_policy(benchmark::State& state, FencePolicy policy) {
  MixParams params;
  params.threads = static_cast<std::size_t>(state.range(0));
  params.txn_size = static_cast<std::size_t>(state.range(1));
  params.read_pct = static_cast<std::size_t>(state.range(2));
  params.registers = 512;
  params.txns_per_thread = 3000;

  tm::TmConfig config;
  config.num_registers = params.registers;
  config.fence_policy = policy;
  auto tmi = tm::make_tm(TmKind::kTl2, config);

  std::uint64_t total_commits = 0;
  std::uint64_t seed = 99;
  for (auto _ : state) {
    total_commits += run_mix_phase(*tmi, params, seed++);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_commits));
  state.counters["txns"] = static_cast<double>(total_commits);
  state.counters["fences"] =
      static_cast<double>(tmi->stats().total(rt::Counter::kFence));
  state.counters["aborts"] =
      static_cast<double>(tmi->stats().total(rt::Counter::kTxAbort));
  state.counters["txn_throughput"] = benchmark::Counter(
      static_cast<double>(total_commits), benchmark::Counter::kIsRate);
}

void BM_FenceOverhead_None(benchmark::State& state) {
  run_mix_under_policy(state, FencePolicy::kNone);
}
void BM_FenceOverhead_Always(benchmark::State& state) {
  run_mix_under_policy(state, FencePolicy::kAlways);
}
void BM_FenceOverhead_SkipRO(benchmark::State& state) {
  run_mix_under_policy(state, FencePolicy::kSkipAfterReadOnly);
}

void apply_args(benchmark::internal::Benchmark* b) {
  // threads × txn_size × read_pct — the Yoo-style sweep.
  for (int threads : {1, 2, 4}) {
    for (int txn_size : {2, 8}) {
      for (int read_pct : {90, 50}) {
        b->Args({threads, txn_size, read_pct});
      }
    }
  }
  b->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(3);
}

BENCHMARK(BM_FenceOverhead_None)->Apply(apply_args);
BENCHMARK(BM_FenceOverhead_Always)->Apply(apply_args);
BENCHMARK(BM_FenceOverhead_SkipRO)->Apply(apply_args);

// ---------------------------------------------------------------------------
// E14: multi-privatizer fence throughput (the persisted matrix).
// ---------------------------------------------------------------------------

enum class StormMode { kScan, kCoalesced, kAsync };

const char* storm_mode_name(StormMode m) {
  switch (m) {
    case StormMode::kScan:
      return "scan";
    case StormMode::kCoalesced:
      return "coalesced";
    case StormMode::kAsync:
      return "async";
  }
  return "?";
}

struct StormParams {
  std::size_t threads = 8;            ///< privatizers (pipeline rounds)
  std::size_t background_threads = 2; ///< back-to-back transaction churn
  std::size_t fences_per_thread = 30;
  std::uint32_t churn_txn_spins = 20000;  ///< busy work per churn transaction
  /// Per-round private work on the privatized buffer, off-CPU (an I/O-like
  /// pipeline stage: flush/process the buffer) — 0 keeps the privatizers
  /// fence-bound, which is the regime the coalesced/async engines target.
  std::uint32_t work_us = 0;
};

struct FenceRow {
  std::string mode;
  std::size_t threads = 0;
  std::uint64_t fences = 0;
  std::uint64_t coalesced = 0;
  double secs = 0.0;
  double fences_per_sec = 0.0;
};

/// One storm phase: `background_threads` run write transactions back to
/// back (the churn every fence's grace period must wait out), while
/// `threads` privatizers run privatization rounds
///   claim (txn) → fence → private work (`work_us` off-CPU per buffer).
/// Under the per-fence-scan engine every privatizer pays its own grace
/// period against the churn on the critical path of every round; the
/// coalesced engine shares one registry scan per grace period among all
/// concurrent fences; the async mode software-pipelines three buffers
/// with two tickets in flight — claim B_i and *issue* its fence, work on
/// B_{i-2} (whose ticket was completed at the top of the round) — so the
/// grace period elapses entirely underneath useful work instead of
/// stalling every round.
///
/// The churn threads are started first and the measured window opens only
/// once each has committed a transaction (i.e. the churn is genuinely in
/// flight); otherwise — especially on small core counts — the privatizers
/// can burn through their fences before the background ever begins and
/// the grace periods being measured are empty.
FenceRow run_fence_storm(StormMode mode, const StormParams& p) {
  const std::size_t all_threads = p.threads + p.background_threads;
  tm::TmConfig config;
  config.num_registers = 4 * all_threads + 2;
  config.fence_mode = mode == StormMode::kScan
                          ? rt::FenceMode::kEpochCounter
                          : rt::FenceMode::kGracePeriodEpoch;
  auto tmi = tm::make_tm(TmKind::kTl2Fused, config);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> churn_ready{0};
  std::vector<std::thread> churn;
  for (std::size_t c = 0; c < p.background_threads; ++c) {
    churn.emplace_back([&, c] {
      auto session = tmi->make_thread(static_cast<hist::ThreadId>(c), nullptr);
      const auto reg = static_cast<hist::RegId>(c);
      hist::Value tag = (static_cast<hist::Value>(c) + 1) << 40;
      bool announced = false;
      while (!stop.load(std::memory_order_relaxed)) {
        tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
          tx.write(reg, ++tag);
          for (std::uint32_t s = 0; s < p.churn_txn_spins; ++s) {
            rt::cpu_relax();
          }
        });
        if (!announced) {
          announced = true;
          churn_ready.fetch_add(1, std::memory_order_release);
        }
      }
    });
  }
  while (churn_ready.load(std::memory_order_acquire) <
         p.background_threads) {
    std::this_thread::yield();
  }

  const auto start = std::chrono::steady_clock::now();
  parallel_phase(p.threads, [&](std::size_t t) {
    const std::size_t id = p.background_threads + t;
    auto session = tmi->make_thread(static_cast<hist::ThreadId>(id), nullptr);
    // Four buffers per privatizer (the async pipeline cycles them with
    // three fences in flight).
    constexpr std::size_t kDepth = 4;
    std::array<hist::RegId, kDepth> bufs;
    for (std::size_t b = 0; b < kDepth; ++b) {
      bufs[b] = static_cast<hist::RegId>(b * all_threads + id);
    }
    hist::Value tag = (static_cast<hist::Value>(id) + 1) << 40;
    const auto work = [&](hist::RegId buf) {
      if (p.work_us != 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(p.work_us));
      }
      session->nt_write(buf, ++tag);
    };
    if (mode == StormMode::kAsync) {
      // Depth-3 software pipeline: the ticket issued for buffer i is
      // completed at the top of round i+3, by which point three rounds
      // have elapsed underneath its grace period — a thread keeps several
      // privatizations in flight per grace period, which the blocking
      // per-fence API structurally cannot do.
      constexpr std::size_t kInFlight = kDepth - 1;
      std::array<rt::FenceTicket, kDepth> tickets{};
      for (std::size_t i = 0; i < p.fences_per_thread; ++i) {
        const std::size_t cur = i % kDepth;
        if (i >= kInFlight) {
          const std::size_t done = (i - kInFlight) % kDepth;
          session->fence_wait(tickets[done]);
          work(bufs[done]);
        }
        tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
          tx.write(bufs[cur], ++tag);
        });
        tickets[cur] = session->fence_async();
      }
      // Drain the pipeline tail.
      for (std::size_t i = p.fences_per_thread >= kInFlight
                               ? p.fences_per_thread - kInFlight
                               : 0;
           i < p.fences_per_thread; ++i) {
        const std::size_t done = i % kDepth;
        session->fence_wait(tickets[done]);
        work(bufs[done]);
      }
    } else {
      for (std::size_t i = 0; i < p.fences_per_thread; ++i) {
        tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
          tx.write(bufs[0], ++tag);
        });
        session->fence();
        work(bufs[0]);
      }
    }
  });
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  stop.store(true, std::memory_order_relaxed);
  for (auto& c : churn) c.join();

  FenceRow row;
  row.mode = storm_mode_name(mode);
  row.threads = p.threads;
  row.fences = tmi->stats().total(rt::Counter::kFence);
  row.coalesced = tmi->stats().total(rt::Counter::kFenceCoalesced);
  row.secs = secs;
  row.fences_per_sec =
      secs > 0.0 ? static_cast<double>(row.fences) / secs : 0.0;
  return row;
}

std::vector<FenceRow> run_storm_matrix(bool quick) {
  const std::vector<std::size_t> threads_sweep =
      quick ? std::vector<std::size_t>{2, 8}
            : std::vector<std::size_t>{1, 2, 4, 8};
  StormParams p;
  p.fences_per_thread = quick ? 12 : 30;
  // Best-of-N (scheduler interference only lowers a measurement).
  const int repeats = quick ? 2 : 3;

  std::vector<FenceRow> rows;
  for (const std::size_t threads : threads_sweep) {
    for (const StormMode mode :
         {StormMode::kScan, StormMode::kCoalesced, StormMode::kAsync}) {
      p.threads = threads;
      (void)run_fence_storm(mode, p);  // warm-up
      FenceRow best = run_fence_storm(mode, p);
      for (int rep = 1; rep < repeats; ++rep) {
        FenceRow r = run_fence_storm(mode, p);
        if (r.fences_per_sec > best.fences_per_sec) best = r;
      }
      rows.push_back(best);
      const auto& r = rows.back();
      std::cout << "storm mode=" << r.mode << " threads=" << r.threads
                << " fences/s=" << r.fences_per_sec
                << " coalesced=" << r.coalesced << "\n";
    }
  }
  return rows;
}

double mode_rate_at(const std::vector<FenceRow>& rows, const char* mode,
                    std::size_t threads) {
  for (const auto& r : rows) {
    if (r.mode == mode && r.threads == threads) return r.fences_per_sec;
  }
  return 0.0;
}

bool write_fence_json(const std::string& path,
                      const std::vector<FenceRow>& rows, double async_ratio,
                      double sync_ratio, std::size_t top_threads) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"bench\": \"fence_overhead\",\n  \"schema\": 1,\n"
      << "  \"top_threads\": " << top_threads << ",\n"
      << "  \"coalesced_async_vs_scan\": " << async_ratio << ",\n"
      << "  \"coalesced_sync_vs_scan\": " << sync_ratio << ",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"mode\": \"" << r.mode << "\", \"threads\": " << r.threads
        << ", \"fences\": " << r.fences << ", \"coalesced\": " << r.coalesced
        << ", \"secs\": " << r.secs << ", \"fences_per_sec\": "
        << r.fences_per_sec << "}" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace
}  // namespace privstm::bench

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      args.push_back(argv[i]);
    }
  }

  using privstm::bench::FenceRow;
  const std::vector<FenceRow> rows = privstm::bench::run_storm_matrix(quick);
  std::size_t top_threads = 0;
  for (const auto& r : rows) top_threads = std::max(top_threads, r.threads);
  const double scan =
      privstm::bench::mode_rate_at(rows, "scan", top_threads);
  const double coalesced =
      privstm::bench::mode_rate_at(rows, "coalesced", top_threads);
  const double async_rate =
      privstm::bench::mode_rate_at(rows, "async", top_threads);
  // The headline number: the coalesced grace-period engine used the way
  // it is meant to be used under multi-privatizer load (deferred tickets,
  // pipelined) against the per-fence-scan baseline. The sync-coalesced
  // ratio is reported alongside: on few-core hosts it hovers around 1x
  // (it removes redundant scan work, not scheduler-bound wait latency).
  const double async_ratio = scan > 0.0 ? async_rate / scan : 0.0;
  const double sync_ratio = scan > 0.0 ? coalesced / scan : 0.0;
  std::cout << "coalesced-engine (async, pipelined) vs scan ("
            << top_threads << " threads): " << async_ratio << "x\n";
  std::cout << "coalesced-engine (sync) vs scan (" << top_threads
            << " threads): " << sync_ratio << "x\n";

  // Quick (smoke) results go to a separate file so a pre-push `ci.sh` run
  // never clobbers the committed full-matrix trajectory.
  const char* path =
      quick ? "BENCH_fence_overhead.quick.json" : "BENCH_fence_overhead.json";
  if (privstm::bench::write_fence_json(path, rows, async_ratio, sync_ratio,
                                       top_threads)) {
    std::cout << "wrote " << rows.size() << " rows to " << path << "\n";
  } else {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }

  if (check && async_ratio < 1.0) {
    std::cerr << "FAIL: the coalesced fence engine regressed below the "
                 "per-fence-scan mode ("
              << async_ratio << "x at " << top_threads << " threads)\n";
    return 1;
  }

  if (!quick) {
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
