// Experiment E6 — the cost of conservative fencing (Yoo et al. [42]).
//
// The paper motivates selective fences with Yoo et al.'s measurement that
// fencing every transaction costs 32 % on average and up to 107 %. We
// reproduce the *shape*: run the same transactional mix under
//   * FencePolicy::kNone      (baseline — no fences at all),
//   * FencePolicy::kAlways    (fence after every commit),
//   * FencePolicy::kSkipAfterReadOnly (fence after writers only),
// and report the throughput plus an `overhead_vs_none` counter. Overhead
// grows with thread count (each fence waits for all concurrent
// transactions) and shrinks with transaction length.
//
// Args: {threads, txn_size, read_pct}.
#include "bench_common.hpp"

namespace privstm::bench {
namespace {

using tm::FencePolicy;
using tm::TmKind;

void run_mix_under_policy(benchmark::State& state, FencePolicy policy) {
  MixParams params;
  params.threads = static_cast<std::size_t>(state.range(0));
  params.txn_size = static_cast<std::size_t>(state.range(1));
  params.read_pct = static_cast<std::size_t>(state.range(2));
  params.registers = 512;
  params.txns_per_thread = 3000;

  tm::TmConfig config;
  config.num_registers = params.registers;
  config.fence_policy = policy;
  auto tmi = tm::make_tm(TmKind::kTl2, config);

  std::uint64_t total_commits = 0;
  std::uint64_t seed = 99;
  for (auto _ : state) {
    total_commits += run_mix_phase(*tmi, params, seed++);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_commits));
  state.counters["txns"] = static_cast<double>(total_commits);
  state.counters["fences"] =
      static_cast<double>(tmi->stats().total(rt::Counter::kFence));
  state.counters["aborts"] =
      static_cast<double>(tmi->stats().total(rt::Counter::kTxAbort));
  state.counters["txn_throughput"] = benchmark::Counter(
      static_cast<double>(total_commits), benchmark::Counter::kIsRate);
}

void BM_FenceOverhead_None(benchmark::State& state) {
  run_mix_under_policy(state, FencePolicy::kNone);
}
void BM_FenceOverhead_Always(benchmark::State& state) {
  run_mix_under_policy(state, FencePolicy::kAlways);
}
void BM_FenceOverhead_SkipRO(benchmark::State& state) {
  run_mix_under_policy(state, FencePolicy::kSkipAfterReadOnly);
}

void apply_args(benchmark::internal::Benchmark* b) {
  // threads × txn_size × read_pct — the Yoo-style sweep.
  for (int threads : {1, 2, 4}) {
    for (int txn_size : {2, 8}) {
      for (int read_pct : {90, 50}) {
        b->Args({threads, txn_size, read_pct});
      }
    }
  }
  b->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(3);
}

BENCHMARK(BM_FenceOverhead_None)->Apply(apply_args);
BENCHMARK(BM_FenceOverhead_Always)->Apply(apply_args);
BENCHMARK(BM_FenceOverhead_SkipRO)->Apply(apply_args);

}  // namespace
}  // namespace privstm::bench
