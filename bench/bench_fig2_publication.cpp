// Experiment E3 — Figure 2, the publication idiom.
//
// Publication is DRF without any fence (§3): every TM must show zero
// violations, and the interesting measurement is the cost of the idiom
// (one NT write + one publishing transaction + one reading transaction).
#include "bench_common.hpp"

namespace privstm::bench {
namespace {

using lang::make_fig2;
using tm::FencePolicy;
using tm::TmKind;

constexpr std::size_t kRuns = 500;

void BM_Fig2_TL2(benchmark::State& state) {
  run_litmus_bench(state, make_fig2(), TmKind::kTl2, FencePolicy::kSelective,
                   kRuns, /*commit_pause=*/512);
}
BENCHMARK(BM_Fig2_TL2)->Iterations(4)->Unit(benchmark::kMillisecond);

void BM_Fig2_NOrec(benchmark::State& state) {
  run_litmus_bench(state, make_fig2(), TmKind::kNOrec, FencePolicy::kNone,
                   kRuns, /*commit_pause=*/512);
}
BENCHMARK(BM_Fig2_NOrec)->Iterations(4)->Unit(benchmark::kMillisecond);

void BM_Fig2_GlobalLock(benchmark::State& state) {
  run_litmus_bench(state, make_fig2(), TmKind::kGlobalLock,
                   FencePolicy::kNone, kRuns, /*commit_pause=*/512);
}
BENCHMARK(BM_Fig2_GlobalLock)->Iterations(4)->Unit(benchmark::kMillisecond);

// Steady-state publication throughput: a producer repeatedly writes a
// payload NT and publishes it transactionally; a consumer polls the flag
// transactionally and reads the payload when published. Items = published
// handoffs observed.
void BM_Fig2_SteadyStateHandoff(benchmark::State& state) {
  tm::TmConfig config;
  config.num_registers = 2;
  auto tmi = tm::make_tm(TmKind::kTl2, config);
  std::uint64_t handoffs = 0;
  for (auto _ : state) {
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> seen{0};
    parallel_phase(2, [&](std::size_t t) {
      auto session = tmi->make_thread(static_cast<hist::ThreadId>(t),
                                      nullptr);
      if (t == 0) {
        for (hist::Value round = 1; round <= 500; ++round) {
          session->nt_write(1, (round << 8) | 1);       // payload
          tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
            tx.write(0, (round << 8) | 2);              // publish
          });
        }
        stop.store(true);
      } else {
        std::uint64_t local = 0;
        hist::Value last = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          hist::Value flag = 0;
          hist::Value payload = 0;
          tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
            flag = tx.read(0);
            payload = flag != 0 ? tx.read(1) : 0;
          });
          if (flag != last && payload != 0) {
            ++local;
            last = flag;
          }
        }
        seen.fetch_add(local);
      }
    });
    handoffs += seen.load();
    tmi->reset();
  }
  state.counters["handoffs"] = static_cast<double>(handoffs);
  state.SetItemsProcessed(static_cast<std::int64_t>(handoffs));
}
BENCHMARK(BM_Fig2_SteadyStateHandoff)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace privstm::bench
