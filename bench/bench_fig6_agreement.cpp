// Experiment E5 — Figure 6, privatization by agreement outside
// transactions.
//
// The idiom is DRF purely through client order (cl ⊆ hb), so it is safe on
// every TM with *no* fence at all — the zero-violation row that contrasts
// with Fig 1's fence requirement.
#include "bench_common.hpp"

namespace privstm::bench {
namespace {

using lang::make_fig6;
using tm::FencePolicy;
using tm::TmKind;

constexpr std::size_t kRuns = 500;

void BM_Fig6_TL2_NoFence(benchmark::State& state) {
  run_litmus_bench(state, make_fig6(), TmKind::kTl2, FencePolicy::kNone,
                   kRuns, /*commit_pause=*/512);
}
BENCHMARK(BM_Fig6_TL2_NoFence)->Iterations(4)->Unit(benchmark::kMillisecond);

void BM_Fig6_NOrec_NoFence(benchmark::State& state) {
  run_litmus_bench(state, make_fig6(), TmKind::kNOrec, FencePolicy::kNone,
                   kRuns, /*commit_pause=*/512);
}
BENCHMARK(BM_Fig6_NOrec_NoFence)->Iterations(4)->Unit(benchmark::kMillisecond);

void BM_Fig6_GlobalLock(benchmark::State& state) {
  run_litmus_bench(state, make_fig6(), TmKind::kGlobalLock,
                   FencePolicy::kNone, kRuns, /*commit_pause=*/512);
}
BENCHMARK(BM_Fig6_GlobalLock)->Iterations(4)->Unit(benchmark::kMillisecond);

// Latency of the agreement handshake itself (transaction → NT flag →
// NT spin → NT read) as a function of the spin-observation cost.
void BM_Fig6_HandshakeLatency(benchmark::State& state) {
  tm::TmConfig config;
  config.num_registers = 2;
  auto tmi = tm::make_tm(TmKind::kTl2, config);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const auto spec = make_fig6();
    lang::LitmusRunOptions options;
    options.runs = 200;
    options.jitter_max_spins = 0;  // pure handshake latency
    options.commit_pause_spins = 0;
    const auto stats = lang::run_litmus(spec, TmKind::kTl2,
                                        FencePolicy::kNone, options);
    rounds += stats.runs;
    if (stats.postcondition_violations != 0) {
      state.SkipWithError("agreement idiom violated — TM bug");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
}
BENCHMARK(BM_Fig6_HandshakeLatency)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace privstm::bench
