// Experiment E13 — ablations of TL2 design choices called out in
// DESIGN.md: global-clock contention and cache-line isolation.
//
// Shape: the fetch_add clock is the scalability choke point of TL2 —
// advance throughput degrades with threads while read-only sampling
// scales; un-padded "false sharing" neighbours collapse under concurrent
// writers, which is why every hot TM word sits alone on a line.
#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_common.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/global_clock.hpp"

namespace privstm::bench {
namespace {

void BM_ClockAdvance(benchmark::State& state) {
  static rt::GlobalClock clock;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.advance());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClockAdvance)->Threads(1)->Threads(2)->Threads(4)
    ->MinTime(0.05)->UseRealTime();

void BM_ClockSample(benchmark::State& state) {
  static rt::GlobalClock clock;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.sample());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClockSample)->Threads(1)->Threads(2)->Threads(4)
    ->MinTime(0.05)->UseRealTime();

// False-sharing ablation: per-thread counters packed adjacently vs
// cache-line isolated.
struct PackedCounters {
  std::atomic<std::uint64_t> vals[8];
};
struct PaddedCounters {
  rt::CacheAligned<std::atomic<std::uint64_t>> vals[8];
};

void BM_CounterPacked(benchmark::State& state) {
  static PackedCounters counters;
  auto& cell = counters.vals[static_cast<std::size_t>(state.thread_index())];
  for (auto _ : state) {
    cell.fetch_add(1, std::memory_order_relaxed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterPacked)->Threads(1)->Threads(2)->Threads(4)
    ->MinTime(0.05)->UseRealTime();

void BM_CounterPadded(benchmark::State& state) {
  static PaddedCounters counters;
  auto& cell =
      *counters.vals[static_cast<std::size_t>(state.thread_index())];
  for (auto _ : state) {
    cell.fetch_add(1, std::memory_order_relaxed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterPadded)->Threads(1)->Threads(2)->Threads(4)
    ->MinTime(0.05)->UseRealTime();

// TL2 single-thread op costs: the instrumentation intercept (vs glock).
void BM_Tl2TxnCost(benchmark::State& state) {
  tm::TmConfig config;
  config.num_registers = 64;
  auto tmi = tm::make_tm(tm::TmKind::kTl2, config);
  auto session = tmi->make_thread(0, nullptr);
  const auto txn_size = static_cast<std::size_t>(state.range(0));
  hist::Value tag = 0;
  for (auto _ : state) {
    tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
      for (std::size_t k = 0; k < txn_size; ++k) {
        const auto reg = static_cast<hist::RegId>(k % 64);
        (void)tx.read(reg);
        tx.write(reg, (++tag << 8) | 1);
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Tl2TxnCost)->Arg(1)->Arg(4)->Arg(16)->MinTime(0.05);

void BM_GlockTxnCost(benchmark::State& state) {
  tm::TmConfig config;
  config.num_registers = 64;
  auto tmi = tm::make_tm(tm::TmKind::kGlobalLock, config);
  auto session = tmi->make_thread(0, nullptr);
  const auto txn_size = static_cast<std::size_t>(state.range(0));
  hist::Value tag = 0;
  for (auto _ : state) {
    tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
      for (std::size_t k = 0; k < txn_size; ++k) {
        const auto reg = static_cast<hist::RegId>(k % 64);
        (void)tx.read(reg);
        tx.write(reg, (++tag << 8) | 1);
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GlockTxnCost)->Arg(1)->Arg(4)->Arg(16)->MinTime(0.05);

// NT access cost: the whole point of privatization — a plain load/store.
void BM_NtAccessCost(benchmark::State& state) {
  tm::TmConfig config;
  config.num_registers = 64;
  auto tmi = tm::make_tm(tm::TmKind::kTl2, config);
  auto session = tmi->make_thread(0, nullptr);
  hist::Value tag = 0;
  for (auto _ : state) {
    session->nt_write(3, (++tag << 8) | 1);
    benchmark::DoNotOptimize(session->nt_read(3));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NtAccessCost)->MinTime(0.05);

}  // namespace
}  // namespace privstm::bench
