// Experiment E14 — the session-store service macro-benchmark
// (DESIGN.md §12): zipfian KV traffic with payload churn and privatizing
// expiry sweeps, per-op-class latency percentiles per phase.
//
// Matrix: backend × sweep fence mode {sync, async} × phase {steady
// zipfian, hot-key storm}. Each (backend, mode) cell runs both phases
// back-to-back against one live store — the storm inherits the steady
// phase's resident sessions — and reports p50/p99/p999 per op class plus
// the TM's counter deltas for that phase.
//
// Shape expectations:
//  * async sweeps beat sync on sweep p50 at >1 bucket: the fence's grace
//    period overlaps the previous bucket's scan instead of sitting on the
//    critical path (PR 2's deferred-privatization pipeline);
//  * the storm phase moves put/get p999 far more than p50 — the hot set
//    serializes through the contention manager while the zipfian tail
//    stays uncontended;
//  * glock's percentiles are flat across phases (everything serializes
//    anyway); the TL2 family pays for the storm in aborts, not latency
//    floor.
//
// This binary has its own main() and no google-benchmark dependency: it
// sweeps the matrix and persists BENCH_service.json (schema 1). `--quick`
// runs a smaller matrix to BENCH_service.quick.json and self-gates — the
// sweeps must actually retire expired sessions and every op class must
// report percentiles — returning nonzero on violation (the CI smoke).
#include <atomic>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "runtime/metrics.hpp"
#include "service/workload.hpp"
#include "tm/factory.hpp"

namespace privstm::bench {
namespace {

using service::OpClass;
using service::kOpClassCount;

struct OpClassCell {
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
};

struct ServiceRow {
  std::string backend;
  std::string fence_mode;
  std::string phase;
  std::size_t threads = 0;
  OpClassCell op[kOpClassCount];
  double ops_per_sec = 0.0;
  std::uint64_t get_hits = 0;
  std::uint64_t get_misses = 0;
  std::uint64_t put_failures = 0;
  std::uint64_t sweeps = 0;
  std::uint64_t sweep_scanned = 0;
  std::uint64_t sweep_retired = 0;
  std::uint64_t consistency_violations = 0;
  // TM counter deltas across the phase.
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t backoffs = 0;
  std::uint64_t escalations = 0;
  std::uint64_t shard_steals = 0;
  std::uint64_t fences = 0;
};

struct MatrixShape {
  std::size_t threads;
  std::size_t num_keys;
  std::size_t ops_per_thread;
  std::size_t buckets;
  std::size_t bucket_capacity;
  std::uint64_t ttl_ticks;
  std::uint64_t sweep_every_ticks;
};

constexpr MatrixShape kFullShape{8, 4096, 6000, 8, 2048, 4096, 2048};
constexpr MatrixShape kQuickShape{4, 512, 600, 4, 512, 512, 256};

/// Snapshot the counters a phase delta is computed over.
struct CounterSnap {
  std::uint64_t commits, aborts, backoffs, escalations, steals, fences;
  static CounterSnap of(tm::TransactionalMemory& tmi) {
    auto& s = tmi.stats();
    return {s.total(rt::Counter::kTxCommit), s.total(rt::Counter::kTxAbort),
            s.total(rt::Counter::kTxRetryBackoff),
            s.total(rt::Counter::kTxEscalated),
            s.total(rt::Counter::kAllocShardSteal),
            s.total(rt::Counter::kFence)};
  }
};

ServiceRow make_row(tm::TmKind kind, service::SweepMode mode,
                    const service::PhaseConfig& phase,
                    const service::WorkloadConfig& cfg,
                    const service::PhaseResult& r, const CounterSnap& before,
                    const CounterSnap& after) {
  ServiceRow row;
  row.backend = tm::tm_kind_name(kind);
  row.fence_mode = service::sweep_mode_name(mode);
  row.phase = phase.label;
  row.threads = cfg.threads;
  for (std::size_t c = 0; c < kOpClassCount; ++c) {
    row.op[c].count = r.latency[c].count();
    row.op[c].p50 = r.latency[c].p50();
    row.op[c].p99 = r.latency[c].p99();
    row.op[c].p999 = r.latency[c].p999();
  }
  row.ops_per_sec =
      r.seconds > 0.0 ? static_cast<double>(r.throughput_ops()) / r.seconds
                      : 0.0;
  row.get_hits = r.get_hits;
  row.get_misses = r.get_misses;
  row.put_failures = r.put_failures;
  row.sweeps = r.sweeps;
  row.sweep_scanned = r.sweep_scanned;
  row.sweep_retired = r.sweep_retired;
  row.consistency_violations = r.consistency_violations;
  row.commits = after.commits - before.commits;
  row.aborts = after.aborts - before.aborts;
  row.backoffs = after.backoffs - before.backoffs;
  row.escalations = after.escalations - before.escalations;
  row.shard_steals = after.steals - before.steals;
  row.fences = after.fences - before.fences;
  return row;
}

std::string row_label(const ServiceRow& r) {
  return r.backend + "/" + r.fence_mode + "/" + r.phase;
}

std::vector<ServiceRow> run_matrix(const MatrixShape& shape,
                                   std::uint64_t seed) {
  std::vector<ServiceRow> rows;
  const service::SweepMode modes[] = {service::SweepMode::kSyncFence,
                                      service::SweepMode::kAsyncFence};
  for (const tm::TmKind kind : tm::all_tm_kinds()) {
    for (const service::SweepMode mode : modes) {
      tm::TmConfig config;
      config.num_registers = 64;
      auto tmi = tm::make_tm(kind, config);

      service::SessionStoreConfig store_cfg;
      store_cfg.buckets = shape.buckets;
      store_cfg.bucket_capacity = shape.bucket_capacity;
      service::SessionStore store(*tmi, store_cfg);

      service::WorkloadConfig cfg;
      cfg.threads = shape.threads;
      cfg.num_keys = shape.num_keys;
      cfg.ttl_ticks = shape.ttl_ticks;
      cfg.sweep_mode = mode;
      cfg.sweep_every_ticks = shape.sweep_every_ticks;

      service::PhaseConfig steady;
      steady.label = "steady";
      steady.ops_per_thread = shape.ops_per_thread;
      steady.zipf_s = 0.99;

      service::PhaseConfig storm;
      storm.label = "hot-storm";
      storm.ops_per_thread = shape.ops_per_thread;
      storm.zipf_s = 0.99;
      storm.hot_permille = 800;  // a flash crowd on 8 keys
      storm.hot_keys = 8;
      storm.mix.put_permille = 300;  // the crowd writes, too

      std::atomic<std::uint64_t> clock{1};
      for (const service::PhaseConfig* phase : {&steady, &storm}) {
        const CounterSnap before = CounterSnap::of(*tmi);
        const auto result =
            service::run_phase(*tmi, store, cfg, *phase, seed, clock);
        const CounterSnap after = CounterSnap::of(*tmi);
        rows.push_back(
            make_row(kind, mode, *phase, cfg, result, before, after));
        std::cout << row_label(rows.back()) << ": "
                  << static_cast<std::uint64_t>(rows.back().ops_per_sec)
                  << " ops/s, get p999 "
                  << rows.back().op[0].p999 << " ns, "
                  << rows.back().sweep_retired << " retired\n";
      }
    }
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Traced cell: one tl2fused × sync run (steady then hot-storm) against a
// trace-enabled TM. The hot-key storm hammers 8 keys, so the per-stripe
// conflict heat map must light up; the cell's metrics snapshot (counters,
// op-class latency histograms, heat map) embeds into BENCH_service.json
// (schema 2) and, with --trace <path>, the lifecycle rings dump as Chrome
// trace JSON plus a Prometheus text file at <path>.prom.
// ---------------------------------------------------------------------------

struct TracedCell {
  std::string metrics_json;
  std::uint64_t heat_conflicts = 0;  ///< whole-map abort sum (gate: > 0)
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
};

TracedCell run_traced_cell(const MatrixShape& shape, std::uint64_t seed,
                           const std::string& trace_path) {
  TracedCell out;
  tm::TmConfig config;
  config.num_registers = 64;
  config.trace.enabled = true;
  // Organic conflict aborts need two transactions racing inside one
  // validation window, which timesliced threads on a single-core box never
  // produce — so, like the clock-share probe in bench_tm_throughput, the
  // traced cell arms a low-rate read-validation abort injection. Injected
  // aborts attribute to the stripe of the access they fired inside, so the
  // heat map, abort-reason plumbing and kTxAbort events all run end to end
  // on any box; the cell's ops_per_sec is NOT comparable to the matrix.
  config.fault.abort_permille = 20;
  config.fault.sites = rt::fault_site_bit(rt::FaultSite::kReadValidation);
  auto tmi = tm::make_tm(tm::TmKind::kTl2Fused, config);

  service::SessionStoreConfig store_cfg;
  store_cfg.buckets = shape.buckets;
  store_cfg.bucket_capacity = shape.bucket_capacity;
  service::SessionStore store(*tmi, store_cfg);

  service::WorkloadConfig cfg;
  cfg.threads = shape.threads;
  cfg.num_keys = shape.num_keys;
  cfg.ttl_ticks = shape.ttl_ticks;
  cfg.sweep_mode = service::SweepMode::kSyncFence;
  cfg.sweep_every_ticks = shape.sweep_every_ticks;

  service::PhaseConfig steady;
  steady.label = "steady";
  steady.ops_per_thread = shape.ops_per_thread;
  steady.zipf_s = 0.99;

  service::PhaseConfig storm;
  storm.label = "hot-storm";
  storm.ops_per_thread = shape.ops_per_thread;
  storm.zipf_s = 0.99;
  storm.hot_permille = 800;
  storm.hot_keys = 8;
  storm.mix.put_permille = 300;

  std::atomic<std::uint64_t> clock{1};
  (void)service::run_phase(*tmi, store, cfg, steady, seed, clock);
  const auto storm_result =
      service::run_phase(*tmi, store, cfg, storm, seed + 1, clock);

  rt::MetricsRegistry registry;
  registry.add_counters(&tmi->stats());
  registry.set_trace(tmi->trace_ptr());
  for (std::size_t c = 0; c < kOpClassCount; ++c) {
    registry.add_histogram(
        std::string(service::op_class_name(static_cast<OpClass>(c))) +
            "_latency",
        &storm_result.latency[c]);
  }
  registry.add_gauge("arena_cells", [&] {
    return static_cast<double>(tmi->heap().allocated_end());
  });
  const rt::MetricsSnapshot snap = registry.snapshot();
  out.metrics_json = rt::to_json(snap);
  out.heat_conflicts = snap.total_conflicts;
  out.trace_dropped = snap.trace_dropped;
  std::cout << "traced cell: " << out.heat_conflicts
            << " heat-map conflicts, hottest stripes:";
  for (const auto& h : snap.hot_stripes) {
    std::cout << " " << h.stripe << "(" << h.aborts << ")";
  }
  std::cout << "\n";
  if (!trace_path.empty()) {
    const std::vector<rt::TraceEvent> events = tmi->trace().drain();
    out.trace_events = events.size();
    if (rt::write_chrome_trace(trace_path, events,
                               tmi->trace().dropped())) {
      std::cout << "wrote " << events.size() << " trace events to "
                << trace_path << "\n";
    } else {
      std::cerr << "failed to write " << trace_path << "\n";
    }
    std::ofstream prom(trace_path + ".prom");
    if (prom) prom << rt::to_prometheus(snap);
  }
  return out;
}

void emit_op_classes(std::ofstream& out, const ServiceRow& r) {
  out << "\"op_classes\": {";
  for (std::size_t c = 0; c < kOpClassCount; ++c) {
    const auto& cell = r.op[c];
    out << "\"" << service::op_class_name(static_cast<OpClass>(c))
        << "\": {\"count\": " << cell.count << ", \"p50\": " << cell.p50
        << ", \"p99\": " << cell.p99 << ", \"p999\": " << cell.p999 << "}"
        << (c + 1 < kOpClassCount ? ", " : "");
  }
  out << "}";
}

/// Schema 2: adds the optional `metrics` object — the traced cell's
/// registry snapshot (rt::to_json), counters + op-class histograms + the
/// per-stripe conflict heat map.
bool write_service_json(const std::string& path, const MatrixShape& shape,
                        const std::vector<ServiceRow>& rows,
                        const std::string& metrics_json = {}) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"bench\": \"service\",\n  \"schema\": 2,\n"
      << "  \"config\": {\"threads\": " << shape.threads
      << ", \"num_keys\": " << shape.num_keys
      << ", \"ops_per_thread\": " << shape.ops_per_thread
      << ", \"buckets\": " << shape.buckets
      << ", \"bucket_capacity\": " << shape.bucket_capacity
      << ", \"ttl_ticks\": " << shape.ttl_ticks
      << ", \"sweep_every_ticks\": " << shape.sweep_every_ticks
      << ", \"latency_unit\": \"ns\"},\n";
  if (!metrics_json.empty()) {
    out << "  \"metrics\": " << metrics_json << ",\n";
  }
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"backend\": \"" << r.backend << "\", \"fence_mode\": \""
        << r.fence_mode << "\", \"phase\": \"" << r.phase
        << "\", \"threads\": " << r.threads << ",\n     ";
    emit_op_classes(out, r);
    out << ",\n     \"ops_per_sec\": " << r.ops_per_sec
        << ", \"get_hits\": " << r.get_hits
        << ", \"get_misses\": " << r.get_misses
        << ", \"put_failures\": " << r.put_failures
        << ", \"sweeps\": " << r.sweeps
        << ", \"sweep_scanned\": " << r.sweep_scanned
        << ", \"sweep_retired\": " << r.sweep_retired
        << ", \"consistency_violations\": " << r.consistency_violations
        << ",\n     \"commits\": " << r.commits << ", \"aborts\": "
        << r.aborts << ", \"backoffs\": " << r.backoffs
        << ", \"escalations\": " << r.escalations
        << ", \"shard_steals\": " << r.shard_steals
        << ", \"fences\": " << r.fences << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

/// Quick-mode self gates (the CI smoke): every cell's sweeps must retire
/// sessions, every traffic op class must have samples with percentiles,
/// and nothing may report a consistency violation.
int gate(const std::vector<ServiceRow>& rows) {
  int failures = 0;
  for (const auto& r : rows) {
    if (r.sweep_retired == 0) {
      std::cerr << "FAIL: " << row_label(r)
                << " retired no expired sessions\n";
      ++failures;
    }
    if (r.consistency_violations != 0) {
      std::cerr << "FAIL: " << row_label(r) << " reported "
                << r.consistency_violations << " consistency violations\n";
      ++failures;
    }
    for (std::size_t c = 0; c < kOpClassCount; ++c) {
      if (r.op[c].count == 0 || r.op[c].p999 == 0 ||
          r.op[c].p50 > r.op[c].p99 || r.op[c].p99 > r.op[c].p999) {
        std::cerr << "FAIL: " << row_label(r) << " op class "
                  << service::op_class_name(static_cast<OpClass>(c))
                  << " has no samples or non-monotone percentiles\n";
        ++failures;
      }
    }
  }
  return failures;
}

}  // namespace
}  // namespace privstm::bench

int main(int argc, char** argv) {
  bool quick = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }
  const auto& shape =
      quick ? privstm::bench::kQuickShape : privstm::bench::kFullShape;
  const auto rows = privstm::bench::run_matrix(shape, /*seed=*/42);
  const auto traced =
      privstm::bench::run_traced_cell(shape, /*seed=*/43, trace_path);
  const char* path =
      quick ? "BENCH_service.quick.json" : "BENCH_service.json";
  if (!privstm::bench::write_service_json(path, shape, rows,
                                          traced.metrics_json)) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << rows.size() << " rows to " << path << "\n";
  int failures = privstm::bench::gate(rows);
  // Heat-map gate: the traced hot-key storm serializes 800 permille of its
  // traffic through 8 keys, so conflict aborts MUST land in the per-stripe
  // heat map — zero means abort attribution lost its stripes.
  if (traced.heat_conflicts == 0) {
    std::cerr << "FAIL: traced hot-storm cell produced an empty conflict "
                 "heat map (total_conflicts == 0)\n";
    ++failures;
  }
  if (failures != 0) {
    std::cerr << failures << " gate failure(s)\n";
    return 1;
  }
  return 0;
}
