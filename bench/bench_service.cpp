// Experiment E14 — the session-store service macro-benchmark
// (DESIGN.md §12): zipfian KV traffic with payload churn and privatizing
// expiry sweeps, per-op-class latency percentiles per phase.
//
// Matrix: backend × sweep fence mode {sync, async} × phase {steady
// zipfian, hot-key storm}. Each (backend, mode) cell runs both phases
// back-to-back against one live store — the storm inherits the steady
// phase's resident sessions — and reports p50/p99/p999 per op class plus
// the TM's counter deltas for that phase.
//
// Shape expectations:
//  * async sweeps beat sync on sweep p50 at >1 bucket: the fence's grace
//    period overlaps the previous bucket's scan instead of sitting on the
//    critical path (PR 2's deferred-privatization pipeline);
//  * the storm phase moves put/get p999 far more than p50 — the hot set
//    serializes through the contention manager while the zipfian tail
//    stays uncontended;
//  * glock's percentiles are flat across phases (everything serializes
//    anyway); the TL2 family pays for the storm in aborts, not latency
//    floor.
//
// This binary has its own main() and no google-benchmark dependency: it
// sweeps the matrix, runs the governed traced cell and the storm-shift
// schedule (adaptive governor vs each static CmPolicy, experiment E17),
// and persists BENCH_service.json (schema 3). `--quick` runs a smaller
// matrix to BENCH_service.quick.json and self-gates — the sweeps must
// actually retire expired sessions, every op class must report
// percentiles, and the adaptive column must hold its storm-shift gates —
// returning nonzero on violation (the CI smoke).
#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "runtime/adaptive.hpp"
#include "runtime/metrics.hpp"
#include "service/workload.hpp"
#include "tm/factory.hpp"

namespace privstm::bench {
namespace {

using service::OpClass;
using service::kOpClassCount;

struct OpClassCell {
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
};

struct ServiceRow {
  std::string backend;
  std::string fence_mode;
  std::string phase;
  std::size_t threads = 0;
  OpClassCell op[kOpClassCount];
  double ops_per_sec = 0.0;
  std::uint64_t get_hits = 0;
  std::uint64_t get_misses = 0;
  std::uint64_t put_failures = 0;
  std::uint64_t sweeps = 0;
  std::uint64_t sweep_scanned = 0;
  std::uint64_t sweep_retired = 0;
  std::uint64_t consistency_violations = 0;
  // TM counter deltas across the phase.
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t backoffs = 0;
  std::uint64_t escalations = 0;
  std::uint64_t shard_steals = 0;
  std::uint64_t fences = 0;
};

struct MatrixShape {
  std::size_t threads;
  std::size_t num_keys;
  std::size_t ops_per_thread;
  std::size_t buckets;
  std::size_t bucket_capacity;
  std::uint64_t ttl_ticks;
  std::uint64_t sweep_every_ticks;
};

constexpr MatrixShape kFullShape{8, 4096, 6000, 8, 2048, 4096, 2048};
constexpr MatrixShape kQuickShape{4, 512, 600, 4, 512, 512, 256};

/// Snapshot the counters a phase delta is computed over.
struct CounterSnap {
  std::uint64_t commits, aborts, backoffs, escalations, steals, fences;
  static CounterSnap of(tm::TransactionalMemory& tmi) {
    auto& s = tmi.stats();
    return {s.total(rt::Counter::kTxCommit), s.total(rt::Counter::kTxAbort),
            s.total(rt::Counter::kTxRetryBackoff),
            s.total(rt::Counter::kTxEscalated),
            s.total(rt::Counter::kAllocShardSteal),
            s.total(rt::Counter::kFence)};
  }
};

ServiceRow make_row(tm::TmKind kind, service::SweepMode mode,
                    const service::PhaseConfig& phase,
                    const service::WorkloadConfig& cfg,
                    const service::PhaseResult& r, const CounterSnap& before,
                    const CounterSnap& after) {
  ServiceRow row;
  row.backend = tm::tm_kind_name(kind);
  row.fence_mode = service::sweep_mode_name(mode);
  row.phase = phase.label;
  row.threads = cfg.threads;
  for (std::size_t c = 0; c < kOpClassCount; ++c) {
    row.op[c].count = r.latency[c].count();
    row.op[c].p50 = r.latency[c].p50();
    row.op[c].p99 = r.latency[c].p99();
    row.op[c].p999 = r.latency[c].p999();
  }
  row.ops_per_sec =
      r.seconds > 0.0 ? static_cast<double>(r.throughput_ops()) / r.seconds
                      : 0.0;
  row.get_hits = r.get_hits;
  row.get_misses = r.get_misses;
  row.put_failures = r.put_failures;
  row.sweeps = r.sweeps;
  row.sweep_scanned = r.sweep_scanned;
  row.sweep_retired = r.sweep_retired;
  row.consistency_violations = r.consistency_violations;
  row.commits = after.commits - before.commits;
  row.aborts = after.aborts - before.aborts;
  row.backoffs = after.backoffs - before.backoffs;
  row.escalations = after.escalations - before.escalations;
  row.shard_steals = after.steals - before.steals;
  row.fences = after.fences - before.fences;
  return row;
}

std::string row_label(const ServiceRow& r) {
  return r.backend + "/" + r.fence_mode + "/" + r.phase;
}

std::vector<ServiceRow> run_matrix(const MatrixShape& shape,
                                   std::uint64_t seed) {
  std::vector<ServiceRow> rows;
  const service::SweepMode modes[] = {service::SweepMode::kSyncFence,
                                      service::SweepMode::kAsyncFence};
  for (const tm::TmKind kind : tm::all_tm_kinds()) {
    for (const service::SweepMode mode : modes) {
      tm::TmConfig config;
      config.num_registers = 64;
      auto tmi = tm::make_tm(kind, config);

      service::SessionStoreConfig store_cfg;
      store_cfg.buckets = shape.buckets;
      store_cfg.bucket_capacity = shape.bucket_capacity;
      service::SessionStore store(*tmi, store_cfg);

      service::WorkloadConfig cfg;
      cfg.threads = shape.threads;
      cfg.num_keys = shape.num_keys;
      cfg.ttl_ticks = shape.ttl_ticks;
      cfg.sweep_mode = mode;
      cfg.sweep_every_ticks = shape.sweep_every_ticks;

      service::PhaseConfig steady;
      steady.label = "steady";
      steady.ops_per_thread = shape.ops_per_thread;
      steady.zipf_s = 0.99;

      service::PhaseConfig storm;
      storm.label = "hot-storm";
      storm.ops_per_thread = shape.ops_per_thread;
      storm.zipf_s = 0.99;
      storm.hot_permille = 800;  // a flash crowd on 8 keys
      storm.hot_keys = 8;
      storm.mix.put_permille = 300;  // the crowd writes, too

      std::atomic<std::uint64_t> clock{1};
      for (const service::PhaseConfig* phase : {&steady, &storm}) {
        const CounterSnap before = CounterSnap::of(*tmi);
        const auto result =
            service::run_phase(*tmi, store, cfg, *phase, seed, clock);
        const CounterSnap after = CounterSnap::of(*tmi);
        rows.push_back(
            make_row(kind, mode, *phase, cfg, result, before, after));
        std::cout << row_label(rows.back()) << ": "
                  << static_cast<std::uint64_t>(rows.back().ops_per_sec)
                  << " ops/s, get p999 "
                  << rows.back().op[0].p999 << " ns, "
                  << rows.back().sweep_retired << " retired\n";
      }
    }
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Traced cell: one tl2fused × sync run (steady then hot-storm) against a
// trace-enabled TM. The hot-key storm hammers 8 keys, so the per-stripe
// conflict heat map must light up; the cell's metrics snapshot (counters,
// op-class latency histograms, heat map) embeds into BENCH_service.json
// (schema 2) and, with --trace <path>, the lifecycle rings dump as Chrome
// trace JSON plus a Prometheus text file at <path>.prom.
// ---------------------------------------------------------------------------

struct TracedCell {
  std::string metrics_json;
  std::uint64_t heat_conflicts = 0;  ///< whole-map abort sum (gate: > 0)
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
  /// Adaptive-governor activity over the traced run (the cell is governed
  /// so its epoch decisions land in the Perfetto dump; gate: shifts > 0).
  std::uint64_t governor_epochs = 0;
  std::uint64_t governor_shifts = 0;
  std::string governor_policy;  ///< live policy when the traffic drained
};

TracedCell run_traced_cell(const MatrixShape& shape, std::uint64_t seed,
                           const std::string& trace_path) {
  TracedCell out;
  tm::TmConfig config;
  config.num_registers = 64;
  config.trace.enabled = true;
  // Organic conflict aborts need two transactions racing inside one
  // validation window, which timesliced threads on a single-core box never
  // produce — so, like the clock-share probe in bench_tm_throughput, the
  // traced cell arms a low-rate read-validation abort injection. Injected
  // aborts attribute to the stripe of the access they fired inside, so the
  // heat map, abort-reason plumbing and kTxAbort events all run end to end
  // on any box; the cell's ops_per_sec is NOT comparable to the matrix.
  config.fault.abort_permille = 20;
  config.fault.sites = rt::fault_site_bit(rt::FaultSite::kReadValidation);
  auto tmi = tm::make_tm(tm::TmKind::kTl2Fused, config);

  service::SessionStoreConfig store_cfg;
  store_cfg.buckets = shape.buckets;
  store_cfg.bucket_capacity = shape.bucket_capacity;
  service::SessionStore store(*tmi, store_cfg);

  service::WorkloadConfig cfg;
  cfg.threads = shape.threads;
  cfg.num_keys = shape.num_keys;
  cfg.ttl_ticks = shape.ttl_ticks;
  cfg.sweep_mode = service::SweepMode::kSyncFence;
  cfg.sweep_every_ticks = shape.sweep_every_ticks;

  // The traced cell runs governed: the injected read-validation abort rate
  // sits well above the storm threshold below, so the governor must adopt
  // a contended tier within a few epochs — putting kGovernorEpoch /
  // kGovernorPolicyShift instants into the Perfetto dump and the policy
  // gauge + epoch counters into the embedded metrics snapshot. The
  // thresholds are deliberately more sensitive than the defaults: this
  // cell's job is exercising the feedback loop end to end, not tuning it.
  rt::GovernorConfig gov_cfg;
  gov_cfg.epoch_commits = 64;
  gov_cfg.low_abort_permille = 5;
  gov_cfg.high_abort_permille = 60;
  rt::AdaptiveGovernor governor(tmi->stats(), gov_cfg, tmi->trace_ptr());
  cfg.governor = &governor;

  service::PhaseConfig steady;
  steady.label = "steady";
  steady.ops_per_thread = shape.ops_per_thread;
  steady.zipf_s = 0.99;

  service::PhaseConfig storm;
  storm.label = "hot-storm";
  storm.ops_per_thread = shape.ops_per_thread;
  storm.zipf_s = 0.99;
  storm.hot_permille = 800;
  storm.hot_keys = 8;
  storm.mix.put_permille = 300;

  std::atomic<std::uint64_t> clock{1};
  (void)service::run_phase(*tmi, store, cfg, steady, seed, clock);
  const auto storm_result =
      service::run_phase(*tmi, store, cfg, storm, seed + 1, clock);
  out.governor_epochs = governor.epochs();
  out.governor_shifts = governor.shifts();
  out.governor_policy = rt::cm_policy_name(governor.decision().policy);

  rt::MetricsRegistry registry;
  registry.add_counters(&tmi->stats());
  registry.set_trace(tmi->trace_ptr());
  for (std::size_t c = 0; c < kOpClassCount; ++c) {
    registry.add_histogram(
        std::string(service::op_class_name(static_cast<OpClass>(c))) +
            "_latency",
        &storm_result.latency[c]);
  }
  registry.add_gauge("arena_cells", [&] {
    return static_cast<double>(tmi->heap().allocated_end());
  });
  registry.add_gauge("governor_policy", [&] {
    return static_cast<double>(
        static_cast<int>(governor.decision().policy));
  });
  const rt::MetricsSnapshot snap = registry.snapshot();
  out.metrics_json = rt::to_json(snap);
  out.heat_conflicts = snap.total_conflicts;
  out.trace_dropped = snap.trace_dropped;
  std::cout << "traced cell: governor epochs=" << out.governor_epochs
            << " shifts=" << out.governor_shifts << " policy="
            << out.governor_policy << "\n";
  std::cout << "traced cell: " << out.heat_conflicts
            << " heat-map conflicts, hottest stripes:";
  for (const auto& h : snap.hot_stripes) {
    std::cout << " " << h.stripe << "(" << h.aborts << ")";
  }
  std::cout << "\n";
  if (!trace_path.empty()) {
    const std::vector<rt::TraceEvent> events = tmi->trace().drain();
    out.trace_events = events.size();
    if (rt::write_chrome_trace(trace_path, events,
                               tmi->trace().dropped())) {
      std::cout << "wrote " << events.size() << " trace events to "
                << trace_path << "\n";
    } else {
      std::cerr << "failed to write " << trace_path << "\n";
    }
    std::ofstream prom(trace_path + ".prom");
    if (prom) prom << rt::to_prometheus(snap);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Storm-shift schedule: adaptive governor vs every static CmPolicy on the
// same abort storm (DESIGN.md §14, experiment E17). Each column runs a
// fresh tl2fused store through a hot-storm phase whose read-validation
// injection fires on every opportunity until a fixed per-slot budget
// drains (the storm is the budget: every column absorbs the same number of
// injected aborts), then a clean steady phase. Static columns pay their
// fixed policy's price for the whole storm — kBackoff's exponential pauses
// are the worst case — while the adaptive column starts on the steady tier
// and must *detect* the storm (abort-rate epochs over threshold, two-epoch
// hysteresis) before it can shift to the storm tier's earlier escalation.
// Gates: adaptive ≥ 0.9× the best static column on the clean steady phase,
// ≥ the worst static column on the whole schedule, and ≥ 1 policy shift
// adopted during the storm.
// ---------------------------------------------------------------------------

/// escalate_after every static column runs with (and the governor's
/// steady/backoff tiers match, so the columns differ only in policy until
/// the governor shifts): with every optimistic attempt aborted by the
/// injector, each op costs exactly this many failed attempts before the
/// serial gate commits it — small enough that the storm stays bounded.
constexpr std::size_t kShiftEscalateAfter = 24;

struct ShiftCell {
  std::string policy;  ///< column: immediate | backoff | karma | adaptive
  double storm_ops_per_sec = 0.0;
  double steady_ops_per_sec = 0.0;
  double schedule_ops_per_sec = 0.0;  ///< whole schedule: Σops / Σseconds
  // Schedule-wide TM counter deltas (fresh TM per column, so totals).
  std::uint64_t aborts = 0;
  std::uint64_t backoffs = 0;
  std::uint64_t escalations = 0;
  std::uint64_t violations = 0;
  // Adaptive column only (zero on the static columns).
  std::uint64_t epochs = 0;
  std::uint64_t shifts = 0;
  std::uint64_t storm_shifts = 0;  ///< shifts adopted during the storm
  std::string final_policy;        ///< live policy when traffic drained
};

std::vector<ShiftCell> run_shift_schedule(const MatrixShape& shape,
                                          std::uint64_t seed) {
  struct Column {
    const char* label;
    bool adaptive;
    rt::CmPolicy policy;
  };
  const Column columns[] = {
      {"immediate", false, rt::CmPolicy::kImmediate},
      {"backoff", false, rt::CmPolicy::kBackoff},
      {"karma", false, rt::CmPolicy::kKarma},
      {"adaptive", true, rt::CmPolicy::kImmediate},
  };
  // The storm budget (injected aborts per slot): the constant floor keeps
  // the governor's detect-and-shift window (~3 epochs × epoch_commits ops
  // × kShiftEscalateAfter aborts each) inside the storm even at the quick
  // shape; the ops-proportional part keeps the storm a real fraction of
  // the full-shape phase. Every column exhausts it before the storm phase
  // ends — the steady phase is injection-free for all four columns.
  const std::uint64_t storm_budget = 5000 + 3 * shape.ops_per_thread;

  // Best-of-2 per column, like every other cell in this bench: the steady
  // gate compares throughputs within ~10%, which single samples on a
  // timesliced box cannot resolve. Each rep is a coherent cell (fresh TM,
  // store, governor); the rep with the higher whole-schedule throughput is
  // kept, except consistency violations, which accumulate across reps —
  // a violation in ANY rep must fail the gate, not get lucky-sampled away.
  constexpr int kShiftReps = 2;

  std::vector<ShiftCell> cells;
  for (const Column& col : columns) {
    ShiftCell best;
    std::uint64_t all_rep_violations = 0;
    for (int rep = 0; rep < kShiftReps; ++rep) {
      tm::TmConfig config;
      config.num_registers = 64;
      config.fault.abort_permille = 1000;  // every opportunity, until...
      config.fault.max_per_thread = storm_budget;  // ...the budget drains
      config.fault.sites =
          rt::fault_site_bit(rt::FaultSite::kReadValidation);
      auto tmi = tm::make_tm(tm::TmKind::kTl2Fused, config);

      service::SessionStoreConfig store_cfg;
      store_cfg.buckets = shape.buckets;
      store_cfg.bucket_capacity = shape.bucket_capacity;
      service::SessionStore store(*tmi, store_cfg);

      service::WorkloadConfig cfg;
      cfg.threads = shape.threads;
      cfg.num_keys = shape.num_keys;
      cfg.ttl_ticks = shape.ttl_ticks;
      cfg.sweep_mode = service::SweepMode::kSyncFence;
      cfg.sweep_every_ticks = shape.sweep_every_ticks;

      std::unique_ptr<rt::AdaptiveGovernor> governor;
      if (col.adaptive) {
        rt::GovernorConfig gov_cfg;
        gov_cfg.epoch_commits = 64;
        gov_cfg.steady_escalate_after = kShiftEscalateAfter;
        gov_cfg.backoff_escalate_after = kShiftEscalateAfter;
        gov_cfg.storm_escalate_after = 8;
        governor = std::make_unique<rt::AdaptiveGovernor>(
            tmi->stats(), gov_cfg, tmi->trace_ptr());
        cfg.governor = governor.get();
      } else {
        tm::TxRetryOptions retry;
        retry.policy = col.policy;
        retry.escalate_after = kShiftEscalateAfter;
        store.set_retry_options(retry);
      }

      service::PhaseConfig storm;
      storm.label = "hot-storm";
      storm.ops_per_thread = shape.ops_per_thread;
      storm.zipf_s = 0.99;
      storm.hot_permille = 800;
      storm.hot_keys = 8;
      storm.mix.put_permille = 300;

      service::PhaseConfig steady;
      steady.label = "steady";
      steady.ops_per_thread = shape.ops_per_thread;
      steady.zipf_s = 0.99;

      std::atomic<std::uint64_t> clock{1};
      const auto storm_result =
          service::run_phase(*tmi, store, cfg, storm, seed + rep * 2, clock);
      const auto steady_result = service::run_phase(*tmi, store, cfg, steady,
                                                    seed + rep * 2 + 1, clock);

      ShiftCell cell;
      cell.policy = col.label;
      cell.storm_ops_per_sec =
          storm_result.seconds > 0.0
              ? static_cast<double>(storm_result.throughput_ops()) /
                    storm_result.seconds
              : 0.0;
      cell.steady_ops_per_sec =
          steady_result.seconds > 0.0
              ? static_cast<double>(steady_result.throughput_ops()) /
                    steady_result.seconds
              : 0.0;
      const double total_secs = storm_result.seconds + steady_result.seconds;
      cell.schedule_ops_per_sec =
          total_secs > 0.0
              ? static_cast<double>(storm_result.throughput_ops() +
                                    steady_result.throughput_ops()) /
                    total_secs
              : 0.0;
      cell.aborts = tmi->stats().total(rt::Counter::kTxAbort);
      cell.backoffs = tmi->stats().total(rt::Counter::kTxRetryBackoff);
      cell.escalations = tmi->stats().total(rt::Counter::kTxEscalated);
      cell.violations = storm_result.consistency_violations +
                        steady_result.consistency_violations;
      if (col.adaptive) {
        cell.epochs = governor->epochs();
        cell.shifts = governor->shifts();
        cell.storm_shifts = storm_result.governor_shifts;
        cell.final_policy = rt::cm_policy_name(governor->decision().policy);
      }
      all_rep_violations += cell.violations;
      if (rep == 0 || cell.schedule_ops_per_sec > best.schedule_ops_per_sec) {
        best = cell;
      }
    }
    ShiftCell cell = best;
    cell.violations = all_rep_violations;
    std::cout << "storm-shift " << cell.policy << ": storm "
              << static_cast<std::uint64_t>(cell.storm_ops_per_sec)
              << " ops/s, steady "
              << static_cast<std::uint64_t>(cell.steady_ops_per_sec)
              << " ops/s, schedule "
              << static_cast<std::uint64_t>(cell.schedule_ops_per_sec)
              << " ops/s, escalations " << cell.escalations;
    if (col.adaptive) {
      std::cout << ", epochs " << cell.epochs << ", shifts " << cell.shifts
                << " (storm " << cell.storm_shifts << "), final "
                << cell.final_policy;
    }
    std::cout << "\n";
    cells.push_back(cell);
  }
  return cells;
}

/// The storm-shift gates (see the section comment above). Run in quick AND
/// full mode — the committed BENCH_service.json must never record a run
/// where the governor lost to the static floor.
int gate_shift(const std::vector<ShiftCell>& cells) {
  int failures = 0;
  const ShiftCell* adaptive = nullptr;
  double best_static_steady = 0.0;
  double worst_static_schedule = 0.0;
  bool first_static = true;
  for (const auto& c : cells) {
    if (c.policy == "adaptive") {
      adaptive = &c;
    } else {
      best_static_steady = std::max(best_static_steady,
                                    c.steady_ops_per_sec);
      worst_static_schedule =
          first_static ? c.schedule_ops_per_sec
                       : std::min(worst_static_schedule,
                                  c.schedule_ops_per_sec);
      first_static = false;
    }
    if (c.violations != 0) {
      std::cerr << "FAIL: storm-shift " << c.policy << " reported "
                << c.violations << " consistency violations\n";
      ++failures;
    }
  }
  if (adaptive == nullptr) {
    std::cerr << "FAIL: storm-shift schedule has no adaptive column\n";
    return failures + 1;
  }
  if (adaptive->epochs == 0) {
    std::cerr << "FAIL: the adaptive column evaluated no governor epochs\n";
    ++failures;
  }
  if (adaptive->storm_shifts == 0) {
    std::cerr << "FAIL: the adaptive column adopted no policy shift "
                 "during the storm phase\n";
    ++failures;
  }
  if (adaptive->steady_ops_per_sec < 0.9 * best_static_steady) {
    std::cerr << "FAIL: adaptive steady phase "
              << adaptive->steady_ops_per_sec
              << " ops/s fell below 0.9x the best static column ("
              << best_static_steady << " ops/s)\n";
    ++failures;
  }
  if (adaptive->schedule_ops_per_sec < worst_static_schedule) {
    std::cerr << "FAIL: adaptive schedule "
              << adaptive->schedule_ops_per_sec
              << " ops/s lost to the worst static column ("
              << worst_static_schedule << " ops/s)\n";
    ++failures;
  }
  return failures;
}

void emit_op_classes(std::ofstream& out, const ServiceRow& r) {
  out << "\"op_classes\": {";
  for (std::size_t c = 0; c < kOpClassCount; ++c) {
    const auto& cell = r.op[c];
    out << "\"" << service::op_class_name(static_cast<OpClass>(c))
        << "\": {\"count\": " << cell.count << ", \"p50\": " << cell.p50
        << ", \"p99\": " << cell.p99 << ", \"p999\": " << cell.p999 << "}"
        << (c + 1 < kOpClassCount ? ", " : "");
  }
  out << "}";
}

/// Schema 2: adds the optional `metrics` object — the traced cell's
/// registry snapshot (rt::to_json), counters + op-class histograms + the
/// per-stripe conflict heat map. Schema 3 adds the `governor` block: the
/// traced (governed) cell's epoch/shift totals and live policy, plus the
/// storm-shift schedule columns (adaptive vs each static CmPolicy).
bool write_service_json(const std::string& path, const MatrixShape& shape,
                        const std::vector<ServiceRow>& rows,
                        const TracedCell& traced,
                        const std::vector<ShiftCell>& shift) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"bench\": \"service\",\n  \"schema\": 3,\n"
      << "  \"config\": {\"threads\": " << shape.threads
      << ", \"num_keys\": " << shape.num_keys
      << ", \"ops_per_thread\": " << shape.ops_per_thread
      << ", \"buckets\": " << shape.buckets
      << ", \"bucket_capacity\": " << shape.bucket_capacity
      << ", \"ttl_ticks\": " << shape.ttl_ticks
      << ", \"sweep_every_ticks\": " << shape.sweep_every_ticks
      << ", \"latency_unit\": \"ns\"},\n";
  out << "  \"governor\": {\"epochs\": " << traced.governor_epochs
      << ", \"shifts\": " << traced.governor_shifts
      << ", \"policy\": \"" << traced.governor_policy << "\",\n"
      << "    \"storm_shift\": [\n";
  for (std::size_t i = 0; i < shift.size(); ++i) {
    const auto& c = shift[i];
    out << "      {\"policy\": \"" << c.policy
        << "\", \"storm_ops_per_sec\": " << c.storm_ops_per_sec
        << ", \"steady_ops_per_sec\": " << c.steady_ops_per_sec
        << ", \"schedule_ops_per_sec\": " << c.schedule_ops_per_sec
        << ", \"aborts\": " << c.aborts
        << ", \"backoffs\": " << c.backoffs
        << ", \"escalations\": " << c.escalations
        << ", \"epochs\": " << c.epochs << ", \"shifts\": " << c.shifts
        << ", \"storm_shifts\": " << c.storm_shifts
        << ", \"final_policy\": \"" << c.final_policy << "\"}"
        << (i + 1 < shift.size() ? "," : "") << "\n";
  }
  out << "    ]\n  },\n";
  if (!traced.metrics_json.empty()) {
    out << "  \"metrics\": " << traced.metrics_json << ",\n";
  }
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"backend\": \"" << r.backend << "\", \"fence_mode\": \""
        << r.fence_mode << "\", \"phase\": \"" << r.phase
        << "\", \"threads\": " << r.threads << ",\n     ";
    emit_op_classes(out, r);
    out << ",\n     \"ops_per_sec\": " << r.ops_per_sec
        << ", \"get_hits\": " << r.get_hits
        << ", \"get_misses\": " << r.get_misses
        << ", \"put_failures\": " << r.put_failures
        << ", \"sweeps\": " << r.sweeps
        << ", \"sweep_scanned\": " << r.sweep_scanned
        << ", \"sweep_retired\": " << r.sweep_retired
        << ", \"consistency_violations\": " << r.consistency_violations
        << ",\n     \"commits\": " << r.commits << ", \"aborts\": "
        << r.aborts << ", \"backoffs\": " << r.backoffs
        << ", \"escalations\": " << r.escalations
        << ", \"shard_steals\": " << r.shard_steals
        << ", \"fences\": " << r.fences << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

/// Quick-mode self gates (the CI smoke): every cell's sweeps must retire
/// sessions, every traffic op class must have samples with percentiles,
/// and nothing may report a consistency violation.
int gate(const std::vector<ServiceRow>& rows) {
  int failures = 0;
  for (const auto& r : rows) {
    if (r.sweep_retired == 0) {
      std::cerr << "FAIL: " << row_label(r)
                << " retired no expired sessions\n";
      ++failures;
    }
    if (r.consistency_violations != 0) {
      std::cerr << "FAIL: " << row_label(r) << " reported "
                << r.consistency_violations << " consistency violations\n";
      ++failures;
    }
    for (std::size_t c = 0; c < kOpClassCount; ++c) {
      if (r.op[c].count == 0 || r.op[c].p999 == 0 ||
          r.op[c].p50 > r.op[c].p99 || r.op[c].p99 > r.op[c].p999) {
        std::cerr << "FAIL: " << row_label(r) << " op class "
                  << service::op_class_name(static_cast<OpClass>(c))
                  << " has no samples or non-monotone percentiles\n";
        ++failures;
      }
    }
  }
  return failures;
}

}  // namespace
}  // namespace privstm::bench

int main(int argc, char** argv) {
  bool quick = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }
  const auto& shape =
      quick ? privstm::bench::kQuickShape : privstm::bench::kFullShape;
  const auto rows = privstm::bench::run_matrix(shape, /*seed=*/42);
  const auto traced =
      privstm::bench::run_traced_cell(shape, /*seed=*/43, trace_path);
  const auto shift = privstm::bench::run_shift_schedule(shape, /*seed=*/44);
  const char* path =
      quick ? "BENCH_service.quick.json" : "BENCH_service.json";
  if (!privstm::bench::write_service_json(path, shape, rows, traced,
                                          shift)) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << rows.size() << " rows to " << path << "\n";
  int failures = privstm::bench::gate(rows);
  failures += privstm::bench::gate_shift(shift);
  // Heat-map gate: the traced hot-key storm serializes 800 permille of its
  // traffic through 8 keys, so conflict aborts MUST land in the per-stripe
  // heat map — zero means abort attribution lost its stripes.
  if (traced.heat_conflicts == 0) {
    std::cerr << "FAIL: traced hot-storm cell produced an empty conflict "
                 "heat map (total_conflicts == 0)\n";
    ++failures;
  }
  // Governed-traced-cell gate: its injected abort rate sits far above the
  // cell's storm threshold, so the governor must have adopted at least one
  // policy shift — the kGovernorPolicyShift instants the Perfetto dump
  // (and ci.sh's grep on it) rely on.
  if (traced.governor_shifts == 0) {
    std::cerr << "FAIL: the governed traced cell adopted no policy shift "
                 "(kGovernorPolicyShift == 0)\n";
    ++failures;
  }
  if (failures != 0) {
    std::cerr << failures << " gate failure(s)\n";
    return 1;
  }
  return 0;
}
