// Experiment E4 — Figure 3, the racy program.
//
// Paper-shape expectation: no fence placement rescues a racy program. TL2
// violates the strongly-atomic postcondition under both kNone and kAlways
// (the NT reads interleave with commit write-back regardless), and even
// the global lock violates it (NT reads do not acquire the lock). The
// postcondition only holds under genuinely strong atomicity.
#include "bench_common.hpp"

namespace privstm::bench {
namespace {

using lang::make_fig3;
using tm::FencePolicy;
using tm::TmKind;

constexpr std::size_t kRuns = 1000;
constexpr std::uint32_t kPause = 4000;

void BM_Fig3_TL2_NoFence(benchmark::State& state) {
  run_litmus_bench(state, make_fig3(), TmKind::kTl2, FencePolicy::kNone,
                   kRuns, kPause);
}
BENCHMARK(BM_Fig3_TL2_NoFence)->Iterations(4)->Unit(benchmark::kMillisecond);

void BM_Fig3_TL2_FenceAlways(benchmark::State& state) {
  // Fences do not help racy programs: violations persist.
  run_litmus_bench(state, make_fig3(), TmKind::kTl2, FencePolicy::kAlways,
                   kRuns, kPause);
}
BENCHMARK(BM_Fig3_TL2_FenceAlways)
    ->Iterations(4)
    ->Unit(benchmark::kMillisecond);

void BM_Fig3_NOrec(benchmark::State& state) {
  // NOrec's commit critical section makes the window narrower but the
  // program is still racy; violations may occur.
  run_litmus_bench(state, make_fig3(), TmKind::kNOrec, FencePolicy::kNone,
                   kRuns, kPause);
}
BENCHMARK(BM_Fig3_NOrec)->Iterations(4)->Unit(benchmark::kMillisecond);

void BM_Fig3_GlobalLock(benchmark::State& state) {
  run_litmus_bench(state, make_fig3(), TmKind::kGlobalLock,
                   FencePolicy::kNone, kRuns, kPause);
}
BENCHMARK(BM_Fig3_GlobalLock)->Iterations(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace privstm::bench
