// Experiment E8 — TL2 (faithful and fused) vs NOrec vs global lock
// throughput.
//
// Shape expectations:
//  * read-heavy, low-contention: TL2 > NOrec > glock at >1 thread
//    (TL2 validates per register; NOrec serializes commits; glock
//    serializes everything);
//  * tl2fused > tl2 everywhere: same protocol, fewer atomic operations per
//    access and no O(set) bookkeeping per transaction (DESIGN.md §7);
//  * write-heavy / high-contention: the faithful/fused gap widens (the
//    fused commit is where most of the savings live), NOrec's single
//    seqlock and glock's mutex converge;
//  * 1 thread: glock wins (no metadata), the STM instrumentation cost is
//    the TL2/NOrec intercept.
//
// Args: {threads, read_pct, registers}.
//
// This binary has its own main(): before running the google-benchmark
// suite it sweeps backend × threads over a read-heavy and a write-heavy
// mix and persists the result as BENCH_tm_throughput.json (see
// bench_common.hpp). `--quick` runs a smaller sweep and skips the
// google-benchmark phase — the CI smoke configuration.
#include <algorithm>
#include <array>
#include <cstring>
#include <iostream>

#include "bench_common.hpp"

namespace privstm::bench {
namespace {

using tm::TmKind;

void run_throughput(benchmark::State& state, TmKind kind) {
  MixParams params;
  params.threads = static_cast<std::size_t>(state.range(0));
  params.read_pct = static_cast<std::size_t>(state.range(1));
  params.registers = static_cast<std::size_t>(state.range(2));
  params.txn_size = 4;
  params.txns_per_thread = 4000;

  tm::TmConfig config;
  config.num_registers = params.registers;
  auto tmi = tm::make_tm(kind, config);

  std::uint64_t total = 0;
  std::uint64_t seed = 7;
  for (auto _ : state) {
    total += run_mix_phase(*tmi, params, seed++);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
  state.counters["txn_throughput"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
  state.counters["aborts"] =
      static_cast<double>(tmi->stats().total(rt::Counter::kTxAbort));
}

void BM_Throughput_TL2(benchmark::State& state) {
  run_throughput(state, TmKind::kTl2);
}
void BM_Throughput_TL2Fused(benchmark::State& state) {
  run_throughput(state, TmKind::kTl2Fused);
}
void BM_Throughput_NOrec(benchmark::State& state) {
  run_throughput(state, TmKind::kNOrec);
}
void BM_Throughput_GlobalLock(benchmark::State& state) {
  run_throughput(state, TmKind::kGlobalLock);
}

void apply_args(benchmark::internal::Benchmark* b) {
  for (int threads : {1, 2, 4, 8}) {
    for (int read_pct : {90, 50}) {
      for (int registers : {64, 4096}) {
        b->Args({threads, read_pct, registers});
      }
    }
  }
  b->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(3);
}

BENCHMARK(BM_Throughput_TL2)->Apply(apply_args);
BENCHMARK(BM_Throughput_TL2Fused)->Apply(apply_args);
BENCHMARK(BM_Throughput_NOrec)->Apply(apply_args);
BENCHMARK(BM_Throughput_GlobalLock)->Apply(apply_args);

// Privatization-phase workload: threads alternate between transactional
// batches and privatize→NT-update→publish phases — the end-to-end cost of
// the paper's programming model on each TM (TL2 pays the fence; NOrec
// does not need it; glock is the serial floor).
void run_privatization_phases(benchmark::State& state, TmKind kind,
                              bool use_fence) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kSlots = 8;     // per-thread data slot + flag
  tm::TmConfig config;
  config.num_registers = 2 * kSlots;
  auto tmi = tm::make_tm(kind, config);

  std::uint64_t phases = 0;
  for (auto _ : state) {
    parallel_phase(threads, [&](std::size_t t) {
      auto session = tmi->make_thread(static_cast<hist::ThreadId>(t),
                                      nullptr);
      const auto flag = static_cast<hist::RegId>(t % kSlots);
      const auto data = static_cast<hist::RegId>(kSlots + (t % kSlots));
      hist::Value tag = (static_cast<hist::Value>(t) + 1) << 40;
      for (int round = 0; round < 300; ++round) {
        // Privatize the slot.
        tm::run_tx_retry(*session,
                         [&](tm::TxScope& tx) { tx.write(flag, ++tag); });
        if (use_fence) session->fence();
        // NT updates while private.
        for (int k = 0; k < 8; ++k) session->nt_write(data, ++tag);
        // Publish back.
        tm::run_tx_retry(*session,
                         [&](tm::TxScope& tx) { tx.write(flag, ++tag); });
      }
    });
    phases += threads * 300;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(phases));
  state.counters["fences"] =
      static_cast<double>(tmi->stats().total(rt::Counter::kFence));
}

// Write-then-privatize mix: every round commits a write transaction to the
// thread's slot and then privatizes it. The sync variant pays the fence on
// the round's critical path; the deferred variant issues the fence ticket,
// commits the NEXT round's write transaction underneath the grace period,
// and completes the ticket afterwards — the fence_async() idiom end to end
// on the shared quiescence subsystem (kGracePeriodEpoch).
void run_write_then_privatize(benchmark::State& state, TmKind kind,
                              bool deferred) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr int kRounds = 400;
  tm::TmConfig config;
  config.num_registers = 2 * threads + 2;
  config.fence_mode = rt::FenceMode::kGracePeriodEpoch;
  auto tmi = tm::make_tm(kind, config);

  std::uint64_t rounds = 0;
  for (auto _ : state) {
    parallel_phase(threads, [&](std::size_t t) {
      auto session = tmi->make_thread(static_cast<hist::ThreadId>(t),
                                      nullptr);
      const auto reg = static_cast<hist::RegId>(t);
      const auto aux = static_cast<hist::RegId>(threads + t);
      hist::Value tag = (static_cast<hist::Value>(t) + 1) << 40;
      rt::FenceTicket pending = rt::kNullFenceTicket;
      for (int round = 0; round < kRounds; ++round) {
        tm::run_tx_retry(*session,
                         [&](tm::TxScope& tx) { tx.write(reg, ++tag); });
        if (deferred) {
          const rt::FenceTicket ticket = session->fence_async();
          session->fence_wait(pending);  // previous round's privatization
          pending = ticket;
        } else {
          session->fence();
        }
        session->nt_write(aux, ++tag);  // the privatized update
      }
      session->fence_wait(pending);
    });
    rounds += threads * kRounds;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
  state.counters["fences"] =
      static_cast<double>(tmi->stats().total(rt::Counter::kFence));
  state.counters["fences_coalesced"] = static_cast<double>(
      tmi->stats().total(rt::Counter::kFenceCoalesced));
}

void BM_WriteThenPrivatize_TL2Fused_Sync(benchmark::State& state) {
  run_write_then_privatize(state, TmKind::kTl2Fused, false);
}
void BM_WriteThenPrivatize_TL2Fused_Deferred(benchmark::State& state) {
  run_write_then_privatize(state, TmKind::kTl2Fused, true);
}

void apply_wtp_args(benchmark::internal::Benchmark* b) {
  for (int threads : {1, 2, 4, 8}) b->Args({threads});
  b->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(3);
}

BENCHMARK(BM_WriteThenPrivatize_TL2Fused_Sync)->Apply(apply_wtp_args);
BENCHMARK(BM_WriteThenPrivatize_TL2Fused_Deferred)->Apply(apply_wtp_args);

void BM_PrivatizationPhases_TL2_Fenced(benchmark::State& state) {
  run_privatization_phases(state, TmKind::kTl2, true);
}
void BM_PrivatizationPhases_TL2Fused_Fenced(benchmark::State& state) {
  run_privatization_phases(state, TmKind::kTl2Fused, true);
}
void BM_PrivatizationPhases_NOrec_NoFence(benchmark::State& state) {
  run_privatization_phases(state, TmKind::kNOrec, false);
}
void BM_PrivatizationPhases_GlobalLock(benchmark::State& state) {
  run_privatization_phases(state, TmKind::kGlobalLock, false);
}

void apply_phase_args(benchmark::internal::Benchmark* b) {
  for (int threads : {1, 2, 4}) b->Args({threads});
  b->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(3);
}

BENCHMARK(BM_PrivatizationPhases_TL2_Fenced)->Apply(apply_phase_args);
BENCHMARK(BM_PrivatizationPhases_TL2Fused_Fenced)->Apply(apply_phase_args);
BENCHMARK(BM_PrivatizationPhases_NOrec_NoFence)->Apply(apply_phase_args);
BENCHMARK(BM_PrivatizationPhases_GlobalLock)->Apply(apply_phase_args);

// Alloc/free-heavy privatization phases: every round allocates a block
// from the transactional heap, fills it transactionally, privatizes it
// with a fence, touches it non-transactionally, and frees it through the
// grace-period-deferred tm_free — the paper's reclamation idiom as a
// workload. This is the cell where the striped-lock-table + limbo-list
// representation pays its rent (stripe hashing on every access, ticket
// churn on every free), so BENCH_tm_throughput.json tracks it per PR.
constexpr std::size_t kAllocFreeBlock = 4;

void run_alloc_free_phase(tm::TransactionalMemory& tmi, std::size_t threads,
                          int rounds) {
  parallel_phase(threads, [&](std::size_t t) {
    auto session = tmi.make_thread(static_cast<hist::ThreadId>(t), nullptr);
    hist::Value tag = (static_cast<hist::Value>(t) + 1) << 40;
    for (int round = 0; round < rounds; ++round) {
      const tm::TxHandle h = tmi.tm_alloc(kAllocFreeBlock);
      tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
        for (std::size_t k = 0; k < kAllocFreeBlock; ++k) {
          tx.write(h.loc(k), ++tag);
        }
      });
      session->fence();                      // privatize the block
      session->nt_write(h.loc(0), ++tag);    // private update
      tmi.tm_free(h);                        // deferred reclamation
    }
  });
}

void BM_AllocFreePrivatize(benchmark::State& state, TmKind kind) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr int kRounds = 300;
  auto tmi = tm::make_tm(kind, tm::TmConfig{});

  std::uint64_t rounds = 0;
  for (auto _ : state) {
    run_alloc_free_phase(*tmi, threads, kRounds);
    rounds += threads * kRounds;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
  state.counters["reclaimed"] =
      static_cast<double>(tmi->heap().reclaimed_count());
  state.counters["limbo"] = static_cast<double>(tmi->heap().limbo_size());
}

void BM_AllocFreePrivatize_TL2Fused(benchmark::State& state) {
  BM_AllocFreePrivatize(state, TmKind::kTl2Fused);
}
void BM_AllocFreePrivatize_NOrec(benchmark::State& state) {
  BM_AllocFreePrivatize(state, TmKind::kNOrec);
}

BENCHMARK(BM_AllocFreePrivatize_TL2Fused)->Apply(apply_wtp_args);
BENCHMARK(BM_AllocFreePrivatize_NOrec)->Apply(apply_wtp_args);

// Mixed-size churn: each thread rotates a window of live blocks whose
// sizes cycle through several size classes, transacting on every block it
// allocates. This is the allocator's worst case before PR 4 — exact-size
// free lists never reused across sizes, so the arena grew without bound
// and every alloc/free serialized on the central lock — and the workload
// that pays for size classes (split/merge reuse) plus magazines (the
// rotation is alloc/free dominated).
constexpr std::size_t kChurnSizes[] = {1, 5, 9, 17, 33, 65};
constexpr std::size_t kChurnWindow = 16;

void run_mixed_churn_phase(tm::TransactionalMemory& tmi, std::size_t threads,
                           int rounds) {
  parallel_phase(threads, [&](std::size_t t) {
    auto session = tmi.make_thread(static_cast<hist::ThreadId>(t), nullptr);
    hist::Value tag = (static_cast<hist::Value>(t) + 1) << 40;
    std::array<tm::TxHandle, kChurnWindow> live{};
    std::size_t tick = t;  // threads start offset in the size cycle
    for (int round = 0; round < rounds; ++round) {
      tm::TxHandle& slot = live[round % kChurnWindow];
      if (slot.valid()) tmi.tm_free(slot);
      slot = tmi.tm_alloc(kChurnSizes[tick++ % std::size(kChurnSizes)]);
      const tm::TxHandle h = slot;
      tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
        tx.write(h.loc(0), ++tag);
        tx.write(h.loc(h.size - 1), ++tag);
      });
    }
    for (tm::TxHandle& h : live) {
      if (h.valid()) tmi.tm_free(h);
    }
  });
}

void BM_MixedChurn(benchmark::State& state, TmKind kind) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr int kRounds = 400;
  auto tmi = tm::make_tm(kind, tm::TmConfig{});
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    run_mixed_churn_phase(*tmi, threads, kRounds);
    rounds += threads * kRounds;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
  state.counters["arena_cells"] =
      static_cast<double>(tmi->heap().allocated_end());
  state.counters["shared_refills"] = static_cast<double>(
      tmi->stats().total(rt::Counter::kAllocSharedRefill));
}

void BM_MixedChurn_TL2Fused(benchmark::State& state) {
  BM_MixedChurn(state, TmKind::kTl2Fused);
}
void BM_MixedChurn_NOrec(benchmark::State& state) {
  BM_MixedChurn(state, TmKind::kNOrec);
}

BENCHMARK(BM_MixedChurn_TL2Fused)->Apply(apply_wtp_args);
BENCHMARK(BM_MixedChurn_NOrec)->Apply(apply_wtp_args);

// ---------------------------------------------------------------------------
// The persisted matrix: backend × threads over a read-heavy low-contention
// mix and a write-heavy contended mix, plus the alloc/free-heavy
// privatization cell, written to BENCH_tm_throughput.json.
// ---------------------------------------------------------------------------

struct Workload {
  const char* label;
  std::size_t read_pct;
  std::size_t registers;
  std::size_t txn_size;
};

// The write-heavy mix uses larger transactions: batchy update transactions
// are where commit-path costs (lock words, write-back stores, the faithful
// backend's write-set collapse) dominate.
constexpr Workload kWorkloads[] = {
    {"read-heavy", 90, 4096, 4},
    {"write-heavy", 10, 256, 8},
};
constexpr const Workload& kWriteHeavy = kWorkloads[1];

struct MatrixResult {
  std::vector<ThroughputRow> rows;
  /// Σ Counter::kLimboBatchRetired over the allocator-heavy cells — the
  /// CI smoke asserts batched reclamation actually ran (> 0 in --quick).
  std::uint64_t limbo_batches = 0;
  /// Σ Counter::kAllocShardSteal over the mixed-churn cells — the CI
  /// smoke asserts the sibling-steal tier actually served refills there
  /// (> 0 in --quick; see DESIGN.md §11).
  std::uint64_t churn_shard_steals = 0;
  /// Σ Counter::kClockStampShared over the clock-share-probe cells — the
  /// CI smoke asserts the GV4 share path ran end to end (> 0 in --quick).
  std::uint64_t probe_clock_shared = 0;
  /// Σ Counter::kGovernorEpoch over the adaptive cells — the CI smoke
  /// asserts the governor actually evaluated epochs there (> 0 in --quick;
  /// see DESIGN.md §14).
  std::uint64_t adaptive_epochs = 0;
};

MatrixResult run_matrix(bool quick) {
  const std::vector<std::size_t> threads_sweep =
      quick ? std::vector<std::size_t>{2, 8}
            : std::vector<std::size_t>{1, 2, 4, 8};
  // Full mode sizes the phase so per-txn work dominates thread spawn +
  // barrier overhead (which would otherwise dilute backend differences).
  const std::size_t txns = quick ? 500 : 12000;
  // Best-of-N per cell: scheduler interference only ever *lowers* a
  // measurement, so the max over repetitions is the least-noisy estimate
  // of what the backend can do (google-benchmark's max aggregate).
  const int repeats = quick ? 2 : 7;

  MatrixResult result;
  std::vector<ThroughputRow>& rows = result.rows;
  for (const auto& wl : kWorkloads) {
    for (const std::size_t threads : threads_sweep) {
      for (const tm::TmKind kind : tm::all_tm_kinds()) {
        MixParams p;
        p.threads = threads;
        p.read_pct = wl.read_pct;
        p.registers = wl.registers;
        p.txn_size = wl.txn_size;
        p.txns_per_thread = txns;
        // Warm-up pass (thread pools, page faults), then the measured ones.
        (void)measure_mix(kind, p, /*seed=*/3);
        ThroughputRow best = measure_mix(kind, p, /*seed=*/7);
        for (int rep = 1; rep < repeats; ++rep) {
          ThroughputRow r = measure_mix(kind, p, /*seed=*/7 + rep);
          if (r.ops_per_sec > best.ops_per_sec) best = r;
        }
        best.workload = wl.label;
        rows.push_back(best);
        const auto& r = rows.back();
        std::cout << "matrix " << wl.label << " backend=" << r.backend
                  << " threads=" << r.threads << " ops/s=" << r.ops_per_sec
                  << " abort_rate=" << r.abort_rate << "\n";
      }
    }
  }

  // The allocator-heavy cells: `alloc-free` runs rounds of alloc → fill →
  // fence → NT touch → deferred free (see run_alloc_free_phase);
  // `mixed-churn` rotates live blocks across six size classes (see
  // run_mixed_churn_phase). Both run the shipped allocator defaults —
  // magazines + batched limbo — and feed the limbo-batch smoke counter.
  struct AllocCell {
    const char* label;
    int rounds;
    void (*run)(tm::TransactionalMemory&, std::size_t, int);
  };
  const AllocCell alloc_cells[] = {
      {"alloc-free", quick ? 150 : 2000, &run_alloc_free_phase},
      {"mixed-churn", quick ? 150 : 2000, &run_mixed_churn_phase},
  };
  for (const AllocCell& cell : alloc_cells) {
    for (const std::size_t threads : threads_sweep) {
      for (const tm::TmKind kind : tm::all_tm_kinds()) {
        ThroughputRow best;
        for (int rep = 0; rep < std::max(repeats - 3, 2); ++rep) {
          auto tmi = tm::make_tm(kind, tm::TmConfig{});
          const auto start = std::chrono::steady_clock::now();
          cell.run(*tmi, threads, cell.rounds);
          const double secs = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
          ThroughputRow r;
          r.backend = tm::tm_kind_name(kind);
          r.workload = cell.label;
          r.threads = threads;
          r.read_pct = 0;
          r.registers = kAllocFreeBlock;  // block size, not a register file
          r.txn_size = kAllocFreeBlock;
          r.commits = tmi->stats().total(rt::Counter::kTxCommit);
          r.aborts = tmi->stats().total(rt::Counter::kTxAbort);
          const double attempts = static_cast<double>(r.commits + r.aborts);
          r.abort_rate =
              attempts > 0.0 ? static_cast<double>(r.aborts) / attempts
                             : 0.0;
          r.retries_per_commit =
              r.commits > 0 ? static_cast<double>(r.aborts) /
                                  static_cast<double>(r.commits)
                            : 0.0;
          r.backoffs = tmi->stats().total(rt::Counter::kTxRetryBackoff);
          r.escalations = tmi->stats().total(rt::Counter::kTxEscalated);
          r.shards = tmi->heap().shard_count();
          r.shard_steals =
              tmi->stats().total(rt::Counter::kAllocShardSteal);
          r.clock_shared =
              tmi->stats().total(rt::Counter::kClockStampShared);
          r.ops_per_sec =
              secs > 0.0
                  ? static_cast<double>(threads) * cell.rounds / secs
                  : 0.0;
          if (r.ops_per_sec > best.ops_per_sec) best = r;
          result.limbo_batches +=
              tmi->stats().total(rt::Counter::kLimboBatchRetired);
          if (std::strcmp(cell.label, "mixed-churn") == 0) {
            result.churn_shard_steals += r.shard_steals;
          }
        }
        rows.push_back(best);
        const auto& r = rows.back();
        std::cout << "matrix " << cell.label << " backend=" << r.backend
                  << " threads=" << r.threads << " ops/s=" << r.ops_per_sec
                  << " abort_rate=" << r.abort_rate << "\n";
      }
    }
  }

  // GV4 clock-share probe: organic stamp sharing needs two committers
  // inside one load→CAS window, which timesliced threads on a
  // single-core box never produce — so the probe cells arm the
  // kClockAdvance fault site at a low rate (a staged rival advancing the
  // clock for real, the same state transition a concurrent committer
  // causes) and drive the write-heavy mix through it. The row's
  // clock_shared then tracks the share path end to end on any box;
  // ops_per_sec carries the fault-injection overhead and is NOT
  // comparable with the unfaulted write-heavy cells.
  for (const tm::TmKind kind : {tm::TmKind::kTl2, tm::TmKind::kTl2Fused}) {
    MixParams p;
    p.threads = 2;
    p.read_pct = kWriteHeavy.read_pct;
    p.registers = kWriteHeavy.registers;
    p.txn_size = kWriteHeavy.txn_size;
    p.txns_per_thread = quick ? 500 : 4000;
    tm::TmConfig config;
    config.num_registers = p.registers;
    config.fault.cas_loss_permille = 20;  // ~2% of writer commits staged
    config.fault.sites = rt::fault_site_bit(rt::FaultSite::kClockAdvance);
    auto tmi = tm::make_tm(kind, config);
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t committed = run_mix_phase(*tmi, p, /*seed=*/11);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    ThroughputRow r;
    r.backend = tm::tm_kind_name(kind);
    r.workload = "clock-share-probe";
    r.threads = p.threads;
    r.read_pct = p.read_pct;
    r.registers = p.registers;
    r.txn_size = p.txn_size;
    r.commits = tmi->stats().total(rt::Counter::kTxCommit);
    r.aborts = tmi->stats().total(rt::Counter::kTxAbort);
    const double attempts = static_cast<double>(r.commits + r.aborts);
    r.abort_rate =
        attempts > 0.0 ? static_cast<double>(r.aborts) / attempts : 0.0;
    r.retries_per_commit =
        r.commits > 0
            ? static_cast<double>(r.aborts) / static_cast<double>(r.commits)
            : 0.0;
    r.backoffs = tmi->stats().total(rt::Counter::kTxRetryBackoff);
    r.escalations = tmi->stats().total(rt::Counter::kTxEscalated);
    r.shards = tmi->heap().shard_count();
    r.shard_steals = tmi->stats().total(rt::Counter::kAllocShardSteal);
    r.clock_shared = tmi->stats().total(rt::Counter::kClockStampShared);
    r.ops_per_sec =
        secs > 0.0 ? static_cast<double>(committed) / secs : 0.0;
    result.probe_clock_shared += r.clock_shared;
    rows.push_back(r);
    std::cout << "matrix clock-share-probe backend=" << r.backend
              << " threads=" << r.threads
              << " clock_shared=" << r.clock_shared
              << " ops/s=" << r.ops_per_sec << "\n";
  }

  // Adaptive-governor column: the write-heavy contended mix re-run with
  // every worker's retry loop driven by an rt::AdaptiveGovernor (fresh per
  // cell, bound to the cell's TM) instead of the static default policy —
  // the closed telemetry feedback loop of DESIGN.md §14 measured next to
  // the static cells it is chartered to match. Epochs tick on commit
  // cadence, so governor_epochs > 0 on any box; shifts appear only when
  // the box produces real contention.
  {
    rt::GovernorConfig gcfg;
    gcfg.epoch_commits = 128;  // several epochs even in the quick cells
    for (const tm::TmKind kind : tm::all_tm_kinds()) {
      MixParams p;
      p.threads = 8;
      p.read_pct = kWriteHeavy.read_pct;
      p.registers = kWriteHeavy.registers;
      p.txn_size = kWriteHeavy.txn_size;
      p.txns_per_thread = txns;
      ThroughputRow best =
          measure_mix(kind, p, /*seed=*/41, tm::TmConfig{}, &gcfg);
      for (int rep = 1; rep < std::max(repeats - 3, 2); ++rep) {
        ThroughputRow r =
            measure_mix(kind, p, 41 + rep, tm::TmConfig{}, &gcfg);
        if (r.ops_per_sec > best.ops_per_sec) best = r;
      }
      best.workload = "write-heavy-adaptive";
      result.adaptive_epochs += best.governor_epochs;
      rows.push_back(best);
      const auto& r = rows.back();
      std::cout << "matrix write-heavy-adaptive backend=" << r.backend
                << " threads=" << r.threads << " ops/s=" << r.ops_per_sec
                << " epochs=" << r.governor_epochs
                << " shifts=" << r.governor_shifts << "\n";
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Trace-overhead probe: the measured cell that gates TmConfig::trace's
// disabled path. Two write-heavy 8-thread tl2fused cells — tracing off
// (the single predictable branch per slow-path site) and tracing on (the
// full ring/heat pipeline) — plus one kept traced instance whose metrics
// snapshot embeds into the JSON and whose ring drains to --trace <path>.
// ---------------------------------------------------------------------------

struct TraceProbeResult {
  ThroughputRow off;         ///< tracing disabled (workload "trace-off")
  ThroughputRow on;          ///< tracing enabled (workload "trace-on")
  std::string metrics_json;  ///< rt::to_json of the traced cell's registry
  std::uint64_t trace_events = 0;   ///< events drained from the export run
  std::uint64_t trace_dropped = 0;  ///< ring-overflow drops in that run
};

TraceProbeResult run_trace_probe(bool quick, const std::string& trace_path) {
  MixParams p;
  p.threads = 8;
  p.read_pct = kWriteHeavy.read_pct;
  p.registers = kWriteHeavy.registers;
  p.txn_size = kWriteHeavy.txn_size;
  p.txns_per_thread = quick ? 500 : 6000;
  const int repeats = quick ? 2 : 4;

  TraceProbeResult result;
  // Disabled path: the default config. Warm up, then best-of-N.
  (void)measure_mix(tm::TmKind::kTl2Fused, p, /*seed=*/3);
  result.off = measure_mix(tm::TmKind::kTl2Fused, p, /*seed=*/7);
  for (int rep = 1; rep < repeats; ++rep) {
    ThroughputRow r = measure_mix(tm::TmKind::kTl2Fused, p, 7 + rep);
    if (r.ops_per_sec > result.off.ops_per_sec) result.off = r;
  }
  result.off.workload = "trace-off";

  // Enabled path: same cell, full lifecycle tracing + conflict heat map.
  tm::TmConfig traced;
  traced.trace.enabled = true;
  result.on = measure_mix(tm::TmKind::kTl2Fused, p, /*seed=*/21, traced);
  for (int rep = 1; rep < repeats; ++rep) {
    ThroughputRow r = measure_mix(tm::TmKind::kTl2Fused, p, 21 + rep, traced);
    if (r.ops_per_sec > result.on.ops_per_sec) result.on = r;
  }
  result.on.workload = "trace-on";

  // Export run: one more traced phase on a kept instance, so the metrics
  // snapshot and (with --trace) the Chrome trace dump describe a real
  // workload rather than an empty TM.
  traced.num_registers = p.registers;
  auto tmi = tm::make_tm(tm::TmKind::kTl2Fused, traced);
  (void)run_mix_phase(*tmi, p, /*seed=*/31);
  rt::MetricsRegistry registry;
  registry.add_counters(&tmi->stats());
  registry.set_trace(tmi->trace_ptr());
  const rt::MetricsSnapshot snap = registry.snapshot();
  result.metrics_json = rt::to_json(snap);
  result.trace_dropped = snap.trace_dropped;
  if (!trace_path.empty()) {
    const std::vector<rt::TraceEvent> events = tmi->trace().drain();
    result.trace_events = events.size();
    if (!rt::write_chrome_trace(trace_path, events,
                                tmi->trace().dropped())) {
      std::cerr << "failed to write " << trace_path << "\n";
    } else {
      std::cout << "wrote " << events.size() << " trace events to "
                << trace_path << "\n";
    }
    std::ofstream prom(trace_path + ".prom");
    if (prom) prom << rt::to_prometheus(snap);
  }
  return result;
}

/// The previous allocator's alloc-free cells, re-measured on the same box
/// right before the PR 4 allocator landed (full-mode rounds, best-of-4):
/// the "before" of the before/after schema 3 records. The magazine +
/// batched-limbo allocator is chartered to beat these at 8 threads.
constexpr const char* kAllocFreeBaselineNote =
    "PR 3 single-lock exact-size allocator (commit 51dc293), same box, "
    "full-mode alloc-free cell, measured 2026-07-30";
const std::vector<BaselineRow> kAllocFreeBaseline = {
    {"tl2", 1, 4880230},  {"tl2fused", 1, 5389270},
    {"norec", 1, 6151930}, {"glock", 1, 5988940},
    {"tl2", 2, 4586940},  {"tl2fused", 2, 4969290},
    {"norec", 2, 5536960}, {"glock", 2, 5498450},
    {"tl2", 4, 2963790},  {"tl2fused", 4, 4321280},
    {"norec", 4, 5093490}, {"glock", 4, 4987330},
    {"tl2", 8, 3787750},  {"tl2fused", 8, 4086380},
    {"norec", 8, 4485980}, {"glock", 8, 4657710},
};

/// The pre-sharding allocator + fetch_add-clock configuration (PR 6,
/// commit 9ed7537), re-measured on the same box right before the sharded
/// store / batched clock landed: the "before" of the schema-5 before/after
/// on the two cells the sharding PR is chartered to move at 8 threads.
constexpr const char* kPr6BaselineNote =
    "PR 6 unsharded free store + fetch_add clock (commit 9ed7537), same "
    "box, full-mode write-heavy and mixed-churn cells, measured 2026-08-07";
const std::vector<BaselineRow> kPr6Baseline = {
    {"tl2", 8, 3567650, "write-heavy"},
    {"tl2fused", 8, 5178870, "write-heavy"},
    {"norec", 8, 5883450, "write-heavy"},
    {"glock", 8, 7310110, "write-heavy"},
    {"tl2", 8, 4180600, "mixed-churn"},
    {"tl2fused", 8, 4913810, "mixed-churn"},
    {"norec", 8, 6469910, "mixed-churn"},
    {"glock", 8, 6528770, "mixed-churn"},
};

/// Report the headline ratio the fused backend is chartered to deliver:
/// tl2fused vs tl2 at the highest measured thread count on the write-heavy
/// mix (identified by its kWorkloads entry, so the filter tracks edits).
void report_fused_speedup(const std::vector<ThroughputRow>& rows) {
  std::size_t top_threads = 0;
  for (const auto& r : rows) {
    if (r.workload == kWriteHeavy.label && r.threads > top_threads) {
      top_threads = r.threads;
    }
  }
  double tl2 = 0.0, fused = 0.0;
  for (const auto& r : rows) {
    if (r.threads == top_threads && r.workload == kWriteHeavy.label) {
      if (r.backend == "tl2") tl2 = r.ops_per_sec;
      if (r.backend == "tl2fused") fused = r.ops_per_sec;
    }
  }
  if (tl2 > 0.0 && fused > 0.0) {
    std::cout << "tl2fused/tl2 speedup (" << top_threads
              << " threads, " << kWriteHeavy.label << "): " << fused / tl2
              << "x\n";
  }
}

}  // namespace
}  // namespace privstm::bench

int main(int argc, char** argv) {
  bool quick = false;
  std::string trace_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }

  auto result = privstm::bench::run_matrix(quick);
  const auto probe = privstm::bench::run_trace_probe(quick, trace_path);
  result.rows.push_back(probe.off);
  result.rows.push_back(probe.on);
  std::cout << "trace probe: off=" << probe.off.ops_per_sec
            << " ops/s, on=" << probe.on.ops_per_sec << " ops/s ("
            << (probe.off.ops_per_sec > 0.0
                    ? probe.on.ops_per_sec / probe.off.ops_per_sec
                    : 0.0)
            << "x), dropped=" << probe.trace_dropped << "\n";
  const auto& rows = result.rows;
  // Quick (smoke) results go to a separate file so a pre-push `ci.sh` run
  // never clobbers the committed full-matrix trajectory.
  const char* path =
      quick ? "BENCH_tm_throughput.quick.json" : "BENCH_tm_throughput.json";
  if (privstm::bench::write_throughput_json(
          path, rows, privstm::tm::AllocConfig{},
          privstm::bench::kAllocFreeBaselineNote,
          privstm::bench::kAllocFreeBaseline,
          privstm::bench::kPr6BaselineNote, privstm::bench::kPr6Baseline,
          probe.metrics_json)) {
    std::cout << "wrote " << rows.size() << " rows to " << path << "\n";
  } else {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  privstm::bench::report_fused_speedup(rows);
  // CI smoke gate: the allocator-heavy cells must exercise batched
  // reclamation — a zero here means frees stopped flowing through the
  // batched limbo (e.g. a refactor silently re-enabled per-free tickets
  // or never sealed batches).
  if (quick && result.limbo_batches == 0) {
    std::cerr << "FAIL: no limbo batches retired across the alloc-free / "
                 "mixed-churn smoke cells (kLimboBatchRetired == 0)\n";
    return 1;
  }
  std::cout << "limbo batches retired across alloc cells: "
            << result.limbo_batches << "\n";
  // Sharded-store gate: mixed-churn spreads freed blocks across every
  // store shard, so its refills must steal from siblings at least once —
  // zero means the steal tier silently stopped running in front of the
  // central lock (or the store degenerated to one shard).
  if (quick && result.churn_shard_steals == 0) {
    std::cerr << "FAIL: no sibling-shard steals across the mixed-churn "
                 "smoke cells (kAllocShardSteal == 0)\n";
    return 1;
  }
  std::cout << "shard steals across mixed-churn cells: "
            << result.churn_shard_steals << "\n";
  // GV4 share-path gate: the staged-rival probe cells must adopt stamps.
  if (quick && result.probe_clock_shared == 0) {
    std::cerr << "FAIL: the clock-share probe cells adopted no stamps "
                 "(kClockStampShared == 0)\n";
    return 1;
  }
  std::cout << "clock stamps shared across probe cells: "
            << result.probe_clock_shared << "\n";
  // Adaptive-governor gate: the governed cells must actually evaluate
  // epochs — zero means the retry loop stopped feeding the governor (or
  // note_commit stopped triggering evaluations), i.e. the feedback loop
  // is open again.
  if (quick && result.adaptive_epochs == 0) {
    std::cerr << "FAIL: the adaptive cells evaluated no governor epochs "
                 "(kGovernorEpoch == 0)\n";
    return 1;
  }
  std::cout << "governor epochs across adaptive cells: "
            << result.adaptive_epochs << "\n";
  // Disabled-path overhead gate: with tracing off, the probe cell runs the
  // exact workload of the matrix's write-heavy tl2fused 8-thread cell, so
  // it must land within noise of it — a regression here means the trace
  // plumbing started costing something with the knob off. The tolerance is
  // deliberately loose (0.5x) because the quick cells are short and the
  // comparison is cross-phase on a shared box.
  double matrix_ref = 0.0;
  for (const auto& r : rows) {
    if (r.workload == "write-heavy" && r.backend == "tl2fused" &&
        r.threads == 8) {
      matrix_ref = r.ops_per_sec;
    }
  }
  if (matrix_ref > 0.0 && probe.off.ops_per_sec < 0.5 * matrix_ref) {
    std::cerr << "FAIL: tracing-disabled throughput regressed: probe "
              << probe.off.ops_per_sec << " ops/s vs matrix reference "
              << matrix_ref << " ops/s (tolerance 0.5x)\n";
    return 1;
  }
  // Enabled-path sanity: lifecycle tracing is slow-path-only, so even the
  // full pipeline must keep a substantial fraction of the throughput.
  if (probe.off.ops_per_sec > 0.0 &&
      probe.on.ops_per_sec < 0.35 * probe.off.ops_per_sec) {
    std::cerr << "FAIL: tracing-enabled throughput collapsed: "
              << probe.on.ops_per_sec << " ops/s vs disabled "
              << probe.off.ops_per_sec << " ops/s (tolerance 0.35x)\n";
    return 1;
  }

  if (!quick) {
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
