// Experiment E8 — TL2 vs NOrec vs global lock throughput.
//
// Shape expectations:
//  * read-heavy, low-contention: TL2 > NOrec > glock at >1 thread
//    (TL2 validates per register; NOrec serializes commits; glock
//    serializes everything);
//  * write-heavy / high-contention: the gap narrows, NOrec's single
//    seqlock and glock's mutex converge;
//  * 1 thread: glock wins (no metadata), the STM instrumentation cost is
//    the TL2/NOrec intercept.
//
// Args: {threads, read_pct, registers}.
#include "bench_common.hpp"

namespace privstm::bench {
namespace {

using tm::TmKind;

void run_throughput(benchmark::State& state, TmKind kind) {
  MixParams params;
  params.threads = static_cast<std::size_t>(state.range(0));
  params.read_pct = static_cast<std::size_t>(state.range(1));
  params.registers = static_cast<std::size_t>(state.range(2));
  params.txn_size = 4;
  params.txns_per_thread = 4000;

  tm::TmConfig config;
  config.num_registers = params.registers;
  auto tmi = tm::make_tm(kind, config);

  std::uint64_t total = 0;
  std::uint64_t seed = 7;
  for (auto _ : state) {
    total += run_mix_phase(*tmi, params, seed++);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
  state.counters["txn_throughput"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
  state.counters["aborts"] =
      static_cast<double>(tmi->stats().total(rt::Counter::kTxAbort));
}

void BM_Throughput_TL2(benchmark::State& state) {
  run_throughput(state, TmKind::kTl2);
}
void BM_Throughput_NOrec(benchmark::State& state) {
  run_throughput(state, TmKind::kNOrec);
}
void BM_Throughput_GlobalLock(benchmark::State& state) {
  run_throughput(state, TmKind::kGlobalLock);
}

void apply_args(benchmark::internal::Benchmark* b) {
  for (int threads : {1, 2, 4}) {
    for (int read_pct : {90, 50}) {
      for (int registers : {64, 4096}) {
        b->Args({threads, read_pct, registers});
      }
    }
  }
  b->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(3);
}

BENCHMARK(BM_Throughput_TL2)->Apply(apply_args);
BENCHMARK(BM_Throughput_NOrec)->Apply(apply_args);
BENCHMARK(BM_Throughput_GlobalLock)->Apply(apply_args);

// Privatization-phase workload: threads alternate between transactional
// batches and privatize→NT-update→publish phases — the end-to-end cost of
// the paper's programming model on each TM (TL2 pays the fence; NOrec
// does not need it; glock is the serial floor).
void run_privatization_phases(benchmark::State& state, TmKind kind,
                              bool use_fence) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kSlots = 8;     // per-thread data slot + flag
  tm::TmConfig config;
  config.num_registers = 2 * kSlots;
  auto tmi = tm::make_tm(kind, config);

  std::uint64_t phases = 0;
  for (auto _ : state) {
    parallel_phase(threads, [&](std::size_t t) {
      auto session = tmi->make_thread(static_cast<hist::ThreadId>(t),
                                      nullptr);
      const auto flag = static_cast<hist::RegId>(t % kSlots);
      const auto data = static_cast<hist::RegId>(kSlots + (t % kSlots));
      hist::Value tag = (static_cast<hist::Value>(t) + 1) << 40;
      for (int round = 0; round < 300; ++round) {
        // Privatize the slot.
        tm::run_tx_retry(*session,
                         [&](tm::TxScope& tx) { tx.write(flag, ++tag); });
        if (use_fence) session->fence();
        // NT updates while private.
        for (int k = 0; k < 8; ++k) session->nt_write(data, ++tag);
        // Publish back.
        tm::run_tx_retry(*session,
                         [&](tm::TxScope& tx) { tx.write(flag, ++tag); });
      }
    });
    phases += threads * 300;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(phases));
  state.counters["fences"] =
      static_cast<double>(tmi->stats().total(rt::Counter::kFence));
}

void BM_PrivatizationPhases_TL2_Fenced(benchmark::State& state) {
  run_privatization_phases(state, TmKind::kTl2, true);
}
void BM_PrivatizationPhases_NOrec_NoFence(benchmark::State& state) {
  run_privatization_phases(state, TmKind::kNOrec, false);
}
void BM_PrivatizationPhases_GlobalLock(benchmark::State& state) {
  run_privatization_phases(state, TmKind::kGlobalLock, false);
}

void apply_phase_args(benchmark::internal::Benchmark* b) {
  for (int threads : {1, 2, 4}) b->Args({threads});
  b->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(3);
}

BENCHMARK(BM_PrivatizationPhases_TL2_Fenced)->Apply(apply_phase_args);
BENCHMARK(BM_PrivatizationPhases_NOrec_NoFence)->Apply(apply_phase_args);
BENCHMARK(BM_PrivatizationPhases_GlobalLock)->Apply(apply_phase_args);

}  // namespace
}  // namespace privstm::bench
