// Experiment E9 — checker complexity: hb closure, opacity-graph build,
// acyclicity, serialization and the full pipeline vs history length.
//
// Shape: hb closure is O(E·n/64) time and O(n²/8) memory (bitset rows);
// graph construction is ~quadratic in node count; the full pipeline stays
// practical to ~10⁴ actions — checker workloads, not production overhead
// (recording is off in performance runs).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "drf/hb_graph.hpp"
#include "drf/race.hpp"
#include "opacity/strong_opacity.hpp"

namespace privstm::bench {
namespace {

using hist::Action;
using hist::ActionKind;

/// Synthesize a well-formed mixed history: `txns` committed transactions
/// round-robin across `threads` threads, each doing `accesses` reads and
/// writes over `registers` registers, plus periodic fences and NT accesses
/// (safely placed: NT traffic goes to a dedicated register range only ever
/// touched non-transactionally, so the history is DRF).
hist::RecordedExecution synth_history(std::size_t txns, std::size_t threads,
                                      std::size_t accesses,
                                      std::size_t registers) {
  hist::RecordedExecution exec;
  std::vector<Action> actions;
  rt::Xoshiro256 rng(42);
  hist::ActionId id = 1;
  hist::Value tag = 0;
  std::vector<hist::Value> committed(registers, hist::kVInit);
  auto emit = [&](hist::ThreadId t, ActionKind kind,
                  hist::RegId reg = hist::kNoReg, hist::Value v = 0) {
    actions.push_back({id++, t, kind, reg, v});
  };
  for (std::size_t i = 0; i < txns; ++i) {
    const auto t = static_cast<hist::ThreadId>(i % threads);
    emit(t, ActionKind::kTxBegin);
    emit(t, ActionKind::kOk);
    for (std::size_t k = 0; k < accesses; ++k) {
      const auto reg = static_cast<hist::RegId>(rng.below(registers));
      if (rng.chance(1, 2)) {
        emit(t, ActionKind::kReadReq, reg);
        emit(t, ActionKind::kReadRet, reg, committed[reg]);
      } else {
        const hist::Value v = ++tag;
        emit(t, ActionKind::kWriteReq, reg, v);
        emit(t, ActionKind::kWriteRet, reg);
        committed[reg] = v;
        exec.publish_order[reg].push_back(v);
      }
    }
    emit(t, ActionKind::kTxCommit);
    emit(t, ActionKind::kCommitted);
    if (i % 8 == 7) {  // a fence every 8 transactions
      emit(t, ActionKind::kFenceBegin);
      emit(t, ActionKind::kFenceEnd);
    }
    if (i % 4 == 3) {  // NT traffic on the private range
      const auto reg = static_cast<hist::RegId>(registers + (i % 4));
      const hist::Value v = ++tag;
      emit(t, ActionKind::kWriteReq, reg, v);
      emit(t, ActionKind::kWriteRet, reg);
      exec.publish_order[reg].push_back(v);
    }
  }
  exec.history = hist::History(std::move(actions));
  return exec;
}

void BM_HbClosure(benchmark::State& state) {
  const auto txns = static_cast<std::size_t>(state.range(0));
  const auto exec = synth_history(txns, 4, 4, 32);
  for (auto _ : state) {
    drf::HbGraph hb(exec.history);
    benchmark::DoNotOptimize(hb.ordered(0, exec.history.size() - 1));
  }
  state.counters["actions"] = static_cast<double>(exec.history.size());
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(exec.history.size()));
}
BENCHMARK(BM_HbClosure)->Arg(50)->Arg(200)->Arg(800)->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);

void BM_RaceDetection(benchmark::State& state) {
  const auto txns = static_cast<std::size_t>(state.range(0));
  const auto exec = synth_history(txns, 4, 4, 32);
  drf::HbGraph hb(exec.history);
  for (auto _ : state) {
    benchmark::DoNotOptimize(drf::find_races(exec.history, hb).drf());
  }
  state.counters["actions"] = static_cast<double>(exec.history.size());
}
BENCHMARK(BM_RaceDetection)->Arg(50)->Arg(200)->Arg(800)->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  const auto txns = static_cast<std::size_t>(state.range(0));
  const auto exec = synth_history(txns, 4, 4, 32);
  std::size_t checked = 0;
  for (auto _ : state) {
    const auto verdict = opacity::check_strong_opacity(exec);
    if (!verdict.ok()) {
      state.SkipWithError("synthetic history failed the checker");
      return;
    }
    ++checked;
  }
  state.counters["actions"] = static_cast<double>(exec.history.size());
  state.SetItemsProcessed(static_cast<std::int64_t>(checked));
}
BENCHMARK(BM_FullPipeline)->Arg(50)->Arg(200)->Arg(800)->MinTime(0.05)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineOnRecordedTl2(benchmark::State& state) {
  // End-to-end: record a real TL2 run, then check it.
  const auto threads = static_cast<std::size_t>(state.range(0));
  tm::TmConfig config;
  config.num_registers = 16;
  for (auto _ : state) {
    state.PauseTiming();
    auto tmi = tm::make_tm(tm::TmKind::kTl2, config);
    hist::Recorder recorder;
    parallel_phase(threads, [&](std::size_t t) {
      auto session = tmi->make_thread(static_cast<hist::ThreadId>(t),
                                      &recorder);
      hist::Value tag = 0;
      rt::Xoshiro256 rng(t + 3);
      for (int i = 0; i < 50; ++i) {
        tm::run_tx(*session, [&](tm::TxScope& tx) {
          const auto reg = static_cast<hist::RegId>(rng.below(16));
          (void)tx.read(reg);
          tx.write(reg, ((static_cast<hist::Value>(t) + 1) << 40) | ++tag);
        });
      }
    });
    const auto exec = recorder.collect();
    state.ResumeTiming();
    const auto verdict = opacity::check_strong_opacity(exec);
    if (!verdict.ok()) {
      state.SkipWithError("TL2 history failed the checker");
      return;
    }
  }
}
BENCHMARK(BM_PipelineOnRecordedTl2)->Arg(2)->Arg(4)->Iterations(5)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace privstm::bench
