// Shared helpers for the benchmark harness (experiments E1–E13, DESIGN.md).
//
// Conventions:
//  * Litmus-style experiments report `violations` / `violation_rate`
//    counters — the paper-shape result is who violates and who does not,
//    not absolute timing.
//  * Throughput experiments run a fixed parallel phase per iteration
//    (spawn, barrier, work, join) under UseRealTime, reporting ops/s via
//    SetItemsProcessed.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lang/litmus.hpp"
#include "runtime/adaptive.hpp"
#include "runtime/barrier.hpp"
#include "runtime/metrics.hpp"
#include "runtime/rng.hpp"
#include "tm/factory.hpp"

namespace privstm::bench {

/// Run one litmus configuration `runs` times; attach violation counters.
inline void run_litmus_bench(benchmark::State& state,
                             const lang::LitmusSpec& spec, tm::TmKind kind,
                             tm::FencePolicy policy, std::size_t runs,
                             std::uint32_t commit_pause_spins,
                             std::uint32_t jitter = 256) {
  std::size_t total_runs = 0;
  std::size_t total_violations = 0;
  std::size_t total_aborts = 0;
  std::size_t total_fences = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    lang::LitmusRunOptions options;
    options.runs = runs;
    options.jitter_max_spins = jitter;
    options.commit_pause_spins = commit_pause_spins;
    options.seed = seed;
    seed += runs;
    const auto stats = lang::run_litmus(spec, kind, policy, options);
    total_runs += stats.runs;
    total_violations += stats.postcondition_violations;
    total_aborts += stats.aborted_txns;
    total_fences += stats.fences;
  }
  state.counters["runs"] = static_cast<double>(total_runs);
  state.counters["violations"] = static_cast<double>(total_violations);
  state.counters["violation_rate"] =
      total_runs ? static_cast<double>(total_violations) /
                       static_cast<double>(total_runs)
                 : 0.0;
  state.counters["aborts"] = static_cast<double>(total_aborts);
  state.counters["fences"] = static_cast<double>(total_fences);
  state.SetItemsProcessed(static_cast<std::int64_t>(total_runs));
}

/// A parallel phase: `threads` workers each execute `per_thread(tid)` after
/// a common barrier; returns once all joined. Measured under UseRealTime.
template <typename F>
void parallel_phase(std::size_t threads, F&& per_thread) {
  rt::SpinBarrier barrier(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      barrier.arrive_and_wait();
      per_thread(t);
    });
  }
  for (auto& w : workers) w.join();
}

/// Standard read/write-mix transactional worker for throughput benches:
/// each transaction does `txn_size` accesses, reads with probability
/// read_pct/100, over `registers` registers.
struct MixParams {
  std::size_t threads = 2;
  std::size_t registers = 256;
  std::size_t txn_size = 4;
  std::size_t read_pct = 90;
  std::size_t txns_per_thread = 2000;
};

/// `retry` is forwarded to every worker's run_tx_retry — the default is the
/// legacy static policy; the adaptive cells pass options carrying a governor.
inline std::uint64_t run_mix_phase(tm::TransactionalMemory& tmi,
                                   const MixParams& p, std::uint64_t seed,
                                   const tm::TxRetryOptions& retry = {}) {
  std::atomic<std::uint64_t> commits{0};
  parallel_phase(p.threads, [&](std::size_t t) {
    auto session = tmi.make_thread(static_cast<hist::ThreadId>(t), nullptr);
    rt::Xoshiro256 rng(seed * 6364136223846793005ULL + t + 1);
    hist::Value tag = 0;
    std::uint64_t local_commits = 0;
    for (std::size_t i = 0; i < p.txns_per_thread; ++i) {
      tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
        for (std::size_t k = 0; k < p.txn_size; ++k) {
          const auto reg = static_cast<hist::RegId>(rng.below(p.registers));
          if (rng.below(100) < p.read_pct) {
            benchmark::DoNotOptimize(tx.read(reg));
          } else {
            tx.write(reg, ((static_cast<hist::Value>(t) + 1) << 40) | ++tag);
          }
        }
      }, retry);
      ++local_commits;
    }
    commits.fetch_add(local_commits, std::memory_order_relaxed);
  });
  return commits.load();
}

// ---------------------------------------------------------------------------
// Machine-readable throughput log (BENCH_tm_throughput.json): one row per
// (backend × threads × workload) cell so the perf trajectory is comparable
// across PRs without scraping google-benchmark console output.
// ---------------------------------------------------------------------------

struct ThroughputRow {
  std::string backend;
  std::string workload = "mix";  ///< matrix cell family (read-heavy, …)
  std::size_t threads = 0;
  std::size_t read_pct = 0;
  std::size_t registers = 0;
  std::size_t txn_size = 0;
  double ops_per_sec = 0.0;   ///< committed top-level transactions per second
  double abort_rate = 0.0;    ///< aborts / (commits + aborts)
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  /// Schema 4 contention-manager telemetry (run_tx_retry, DESIGN.md §10):
  /// how hard the retry loop worked per successful transaction, and whether
  /// the irrevocable escape hatch ever fired under this workload.
  double retries_per_commit = 0.0;  ///< aborted attempts per commit
  std::uint64_t backoffs = 0;       ///< Counter::kTxRetryBackoff
  std::uint64_t escalations = 0;    ///< Counter::kTxEscalated
  /// Schema 5 sharding telemetry (DESIGN.md §11): the store shard count
  /// the run used, how often a magazine refill was served by a *sibling*
  /// shard's bins (Counter::kAllocShardSteal), and how many commit stamps
  /// were adopted from a rival committer's clock CAS instead of minted
  /// (Counter::kClockStampShared — only the TL2 family mints stamps).
  std::size_t shards = 0;
  std::uint64_t shard_steals = 0;   ///< Counter::kAllocShardSteal
  std::uint64_t clock_shared = 0;   ///< Counter::kClockStampShared
  /// Schema 7 adaptive-governor telemetry (runtime/adaptive.hpp): epoch
  /// evaluations and adopted tier shifts for the governed cells (zero in
  /// every static-policy cell).
  std::uint64_t governor_epochs = 0;   ///< Counter::kGovernorEpoch
  std::uint64_t governor_shifts = 0;   ///< Counter::kGovernorPolicyShift
};

/// Run one timed mix phase on a fresh TM instance and collect a row.
/// `base` seeds the TM configuration (num_registers is overridden from the
/// mix params) — the trace-overhead probe cells pass a trace-enabled base.
/// When `governor` is non-null the phase runs governed: a fresh
/// rt::AdaptiveGovernor (bound to this TM's stats/trace domains) is handed
/// to every worker's retry loop, so the cell measures the closed feedback
/// loop rather than a static policy.
inline ThroughputRow measure_mix(tm::TmKind kind, const MixParams& p,
                                 std::uint64_t seed,
                                 const tm::TmConfig& base = {},
                                 const rt::GovernorConfig* governor = nullptr) {
  tm::TmConfig config = base;
  config.num_registers = p.registers;
  auto tmi = tm::make_tm(kind, config);
  std::unique_ptr<rt::AdaptiveGovernor> gov;
  tm::TxRetryOptions retry;
  if (governor != nullptr) {
    gov = std::make_unique<rt::AdaptiveGovernor>(tmi->stats(), *governor,
                                                 tmi->trace_ptr());
    retry.governor = gov.get();
  }

  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t committed = run_mix_phase(*tmi, p, seed, retry);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ThroughputRow row;
  row.backend = tm::tm_kind_name(kind);
  row.threads = p.threads;
  row.read_pct = p.read_pct;
  row.registers = p.registers;
  row.txn_size = p.txn_size;
  row.commits = tmi->stats().total(rt::Counter::kTxCommit);
  row.aborts = tmi->stats().total(rt::Counter::kTxAbort);
  row.ops_per_sec = secs > 0.0 ? static_cast<double>(committed) / secs : 0.0;
  const double attempts = static_cast<double>(row.commits + row.aborts);
  row.abort_rate =
      attempts > 0.0 ? static_cast<double>(row.aborts) / attempts : 0.0;
  row.retries_per_commit =
      row.commits > 0 ? static_cast<double>(row.aborts) /
                            static_cast<double>(row.commits)
                      : 0.0;
  row.backoffs = tmi->stats().total(rt::Counter::kTxRetryBackoff);
  row.escalations = tmi->stats().total(rt::Counter::kTxEscalated);
  row.shards = tmi->heap().shard_count();
  row.shard_steals = tmi->stats().total(rt::Counter::kAllocShardSteal);
  row.clock_shared = tmi->stats().total(rt::Counter::kClockStampShared);
  row.governor_epochs = tmi->stats().total(rt::Counter::kGovernorEpoch);
  row.governor_shifts =
      tmi->stats().total(rt::Counter::kGovernorPolicyShift);
  return row;
}

/// A reference measurement embedded alongside the live rows — schema 3
/// records the previous allocator's `alloc-free` cells (re-measured on
/// the same box) so the before/after is readable straight from the file;
/// schema 5's `pr6_baseline` series reuses the shape with a workload tag.
struct BaselineRow {
  const char* backend;
  std::size_t threads;
  double ops_per_sec;
  const char* workload = "alloc-free";
};

/// Snapshot a TM instance's counters + conflict heat map as an embeddable
/// metrics JSON object (rt::MetricsRegistry / rt::to_json).
inline std::string tm_metrics_json(tm::TransactionalMemory& tmi) {
  rt::MetricsRegistry reg;
  reg.add_counters(&tmi.stats());
  reg.set_trace(tmi.trace_ptr());
  return rt::to_json(reg.snapshot());
}

/// Emit the rows as a stable, diff-friendly JSON document. Schema 3 added
/// the `alloc` config block (the heap-allocator knobs the run used) and an
/// optional `alloc_free_baseline` reference series; schema 4 added the
/// contention-manager telemetry per row (`retries_per_commit`, `backoffs`,
/// `escalations` — run_tx_retry now drives every mix worker through the
/// CM); schema 5 adds the per-row sharding telemetry (`shards`,
/// `shard_steals`, `clock_shared`), the `shards` knob in the alloc block,
/// and an optional `pr6_baseline` series (the pre-sharding allocator and
/// clock, re-measured on the same box) for the before/after. Schema 6 adds
/// the `trace-probe` workload rows (tracing-enabled vs -disabled overhead
/// cells) and an optional embedded `metrics` object (`metrics_json`, a
/// pre-rendered rt::to_json document from the traced cell's registry).
/// Schema 7 adds the adaptive-governor cells (workload `*-adaptive`, one
/// per backend, retry loops driven by rt::AdaptiveGovernor) and the per-row
/// `governor_epochs` / `governor_shifts` telemetry.
inline bool write_throughput_json(
    const std::string& path, const std::vector<ThroughputRow>& rows,
    const tm::AllocConfig& alloc, const char* baseline_note = nullptr,
    const std::vector<BaselineRow>& baseline = {},
    const char* pr6_note = nullptr,
    const std::vector<BaselineRow>& pr6_baseline = {},
    const std::string& metrics_json = {}) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"bench\": \"tm_throughput\",\n  \"schema\": 7,\n"
      << "  \"alloc\": {\"magazine_size\": " << alloc.magazine_size
      << ", \"batch_depth\": " << alloc.limbo_batch
      << ", \"max_class_size\": " << alloc.max_class_size
      << ", \"shards\": " << alloc.effective_shards() << "},\n";
  if (!metrics_json.empty()) {
    out << "  \"metrics\": " << metrics_json << ",\n";
  }
  const auto emit_series = [&out](const char* name, const char* note,
                                  const std::vector<BaselineRow>& series) {
    out << "  \"" << name << "\": {\n    \"note\": \""
        << (note != nullptr ? note : "") << "\",\n    \"rows\": [\n";
    for (std::size_t i = 0; i < series.size(); ++i) {
      const auto& b = series[i];
      out << "      {\"backend\": \"" << b.backend << "\", \"workload\": \""
          << b.workload << "\", \"threads\": " << b.threads
          << ", \"ops_per_sec\": " << b.ops_per_sec << "}"
          << (i + 1 < series.size() ? "," : "") << "\n";
    }
    out << "    ]\n  },\n";
  };
  if (!baseline.empty()) {
    emit_series("alloc_free_baseline", baseline_note, baseline);
  }
  if (!pr6_baseline.empty()) {
    emit_series("pr6_baseline", pr6_note, pr6_baseline);
  }
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"backend\": \"" << r.backend << "\", \"workload\": \""
        << r.workload << "\", \"threads\": "
        << r.threads << ", \"read_pct\": " << r.read_pct
        << ", \"registers\": " << r.registers << ", \"txn_size\": "
        << r.txn_size << ", \"ops_per_sec\": " << r.ops_per_sec
        << ", \"abort_rate\": " << r.abort_rate << ", \"commits\": "
        << r.commits << ", \"aborts\": " << r.aborts
        << ", \"retries_per_commit\": " << r.retries_per_commit
        << ", \"backoffs\": " << r.backoffs
        << ", \"escalations\": " << r.escalations
        << ", \"shards\": " << r.shards
        << ", \"shard_steals\": " << r.shard_steals
        << ", \"clock_shared\": " << r.clock_shared
        << ", \"governor_epochs\": " << r.governor_epochs
        << ", \"governor_shifts\": " << r.governor_shifts << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace privstm::bench
