// Experiment E7 — fence latency as a function of in-flight transaction
// duration (the RCU grace-period cost).
//
// Shape: a transactional fence blocks until every transaction active at
// its start completes, so its latency tracks the length of the longest
// concurrent transaction; with no active transactions it is O(#threads)
// flag loads. Also compares the epoch-counter fence against the
// paper-faithful boolean scan under back-to-back transactions (the boolean
// scan can observe much longer waits because it must catch a thread
// *between* transactions).
#include <atomic>

#include "bench_common.hpp"
#include "runtime/backoff.hpp"

namespace privstm::bench {
namespace {

using tm::FencePolicy;
using tm::TmKind;

/// Fence latency with `workers` threads running transactions of
/// `txn_spins` busy-work each, under the given fence mode.
void fence_latency(benchmark::State& state, rt::FenceMode mode) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const auto txn_spins = static_cast<std::uint32_t>(state.range(1));

  tm::TmConfig config;
  config.num_registers = 64;
  config.fence_mode = mode;
  auto tmi = tm::make_tm(TmKind::kTl2, config);

  std::atomic<bool> stop{false};
  std::vector<std::thread> churn;
  for (std::size_t t = 0; t < workers; ++t) {
    churn.emplace_back([&, t] {
      auto session = tmi->make_thread(static_cast<hist::ThreadId>(t + 1),
                                      nullptr);
      hist::Value tag = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        tm::run_tx(*session, [&](tm::TxScope& tx) {
          tx.write(static_cast<hist::RegId>(t), ((tag++) << 8) | (t + 1));
          for (std::uint32_t s = 0; s < txn_spins; ++s) rt::cpu_relax();
        });
      }
    });
  }

  auto fencer = tmi->make_thread(0, nullptr);
  std::uint64_t fences = 0;
  for (auto _ : state) {
    fencer->fence();
    ++fences;
  }
  stop.store(true);
  for (auto& w : churn) w.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(fences));
}

void BM_FenceLatency_Epoch(benchmark::State& state) {
  fence_latency(state, rt::FenceMode::kEpochCounter);
}
void BM_FenceLatency_PaperBoolean(benchmark::State& state) {
  fence_latency(state, rt::FenceMode::kPaperBoolean);
}
void BM_FenceLatency_GracePeriod(benchmark::State& state) {
  fence_latency(state, rt::FenceMode::kGracePeriodEpoch);
}

void apply_args(benchmark::internal::Benchmark* b) {
  // workers × txn busy-work spins: latency should scale with txn length.
  for (int workers : {1, 2}) {
    for (int spins : {0, 1000, 10000, 100000}) {
      b->Args({workers, spins});
    }
  }
  b->Unit(benchmark::kMicrosecond)->UseRealTime()->MinTime(0.05);
}

BENCHMARK(BM_FenceLatency_Epoch)->Apply(apply_args);
BENCHMARK(BM_FenceLatency_PaperBoolean)->Apply(apply_args);
BENCHMARK(BM_FenceLatency_GracePeriod)->Apply(apply_args);

// Idle fence cost (no transactions at all): the floor.
void BM_FenceLatency_Idle(benchmark::State& state) {
  tm::TmConfig config;
  config.num_registers = 8;
  auto tmi = tm::make_tm(TmKind::kTl2, config);
  auto fencer = tmi->make_thread(0, nullptr);
  for (auto _ : state) fencer->fence();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FenceLatency_Idle)->Unit(benchmark::kNanosecond)->MinTime(0.05);

}  // namespace
}  // namespace privstm::bench
