// Quickstart: concurrent bank accounts on TL2 with a privatization phase.
//
//   1. Threads transfer money between accounts transactionally.
//   2. One thread privatizes the whole bank (transactionally sets a flag
//      every transaction checks), issues a transactional fence, and then
//      audits the accounts with plain non-transactional reads — no
//      instrumentation, no aborts, and safe because the program is DRF.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "runtime/rng.hpp"
#include "tm/factory.hpp"

using namespace privstm;

namespace {

constexpr std::size_t kAccounts = 16;
constexpr hist::RegId kClosedFlag = kAccounts;  // register after accounts
constexpr hist::Value kInitialBalance = 1000;
constexpr int kWorkers = 3;
constexpr int kTransfersPerWorker = 20000;

void worker(tm::TransactionalMemory& bank, int id) {
  auto session = bank.make_thread(id, nullptr);
  rt::Xoshiro256 rng(static_cast<std::uint64_t>(id) + 1);
  for (int i = 0; i < kTransfersPerWorker; ++i) {
    const auto from = static_cast<hist::RegId>(rng.below(kAccounts));
    const auto to = static_cast<hist::RegId>(rng.below(kAccounts));
    if (from == to) continue;
    tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
      if (tx.read(kClosedFlag) != 0) return;  // bank privatized: stand down
      const hist::Value balance = tx.read(from);
      if (balance == 0) return;
      tx.write(from, balance - 1);
      tx.write(to, tx.read(to) + 1);
    });
  }
}

}  // namespace

int main() {
  tm::TmConfig config;
  config.num_registers = kAccounts + 1;
  config.fence_policy = tm::FencePolicy::kSelective;
  auto bank = tm::make_tm(tm::TmKind::kTl2, config);

  // Fund the accounts before any concurrency starts.
  {
    auto setup = bank->make_thread(0, nullptr);
    for (std::size_t i = 0; i < kAccounts; ++i) {
      setup->nt_write(static_cast<hist::RegId>(i), kInitialBalance);
    }
  }

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&bank, w] { worker(*bank, w + 1); });
  }

  // The auditor: let the workers run, then privatize and audit.
  auto auditor = bank->make_thread(0, nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Step 1: privatize — after this commits, every new transaction sees the
  // flag and backs off.
  tm::run_tx_retry(*auditor,
                   [](tm::TxScope& tx) { tx.write(kClosedFlag, 1); });

  // Step 2: the transactional fence — wait for in-flight transactions that
  // may still write account registers (the delayed-commit hazard of the
  // paper's Fig 1a).
  auditor->fence();

  // Step 3: audit with uninstrumented reads. DRF ⇒ strong atomicity ⇒
  // this sees a consistent snapshot.
  hist::Value total = 0;
  for (std::size_t i = 0; i < kAccounts; ++i) {
    total += auditor->nt_read(static_cast<hist::RegId>(i));
  }
  std::printf("audited total: %llu (expected %llu) — %s\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(kInitialBalance * kAccounts),
              total == kInitialBalance * kAccounts ? "consistent"
                                                   : "CORRUPTED");

  // Step 4: publish the bank back and let workers finish.
  tm::run_tx_retry(*auditor,
                   [](tm::TxScope& tx) { tx.write(kClosedFlag, 0); });
  for (auto& w : workers) w.join();

  hist::Value final_total = 0;
  for (std::size_t i = 0; i < kAccounts; ++i) {
    final_total += bank->peek(static_cast<hist::RegId>(i));
  }
  std::printf("final total:   %llu — %s\n",
              static_cast<unsigned long long>(final_total),
              final_total == kInitialBalance * kAccounts ? "conserved"
                                                         : "CORRUPTED");
  std::printf("tm stats: %s\n", bank->stats().summary().c_str());
  return total == kInitialBalance * kAccounts &&
                 final_total == kInitialBalance * kAccounts
             ? 0
             : 1;
}
