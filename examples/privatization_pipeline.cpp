// A staged processing pipeline built on the privatize → work → publish
// idiom (the paper's §1 motivation: avoid transactional overhead on hot
// data you temporarily own).
//
// A shared table of work buffers is normally accessed transactionally.
// Each worker repeatedly:
//   1. claims a buffer by CAS-style transaction on its owner register,
//   2. issues a transactional fence (delayed-commit protection, Fig 1a),
//   3. mutates the buffer with plain NT accesses (16 updates, zero
//      instrumentation),
//   4. publishes the buffer back transactionally.
//
// The pipeline runs twice, demonstrating both fencing styles of the
// quiescence subsystem (DESIGN.md §5):
//   * synchronous — fence() blocks between claim and the NT work;
//   * deferred    — fence_async() issues a ticket right after the claim,
//     the worker keeps doing useful *transactional* bookkeeping while the
//     grace period elapses (coalesced kGracePeriodEpoch engine), and only
//     then completes the ticket and touches the buffer uninstrumented.
//
// The invariant checked at the end of each phase: every buffer's content
// equals the number of completed work phases on it — any delayed commit
// or doomed read would corrupt the count.
//
// Build & run:  ./examples/privatization_pipeline
#include <cstdio>
#include <thread>
#include <vector>

#include "runtime/rng.hpp"
#include "tm/factory.hpp"

using namespace privstm;

namespace {

constexpr std::size_t kBuffers = 4;
constexpr std::size_t kCellsPerBuffer = 4;
constexpr int kWorkers = 3;
constexpr int kPhasesPerWorker = 2000;

// Register layout: [0, kBuffers) owner flags; then kBuffers × kCells data;
// then one transactional bookkeeping counter per worker.
constexpr hist::RegId owner_reg(std::size_t buffer) {
  return static_cast<hist::RegId>(buffer);
}
constexpr hist::RegId cell_reg(std::size_t buffer, std::size_t cell) {
  return static_cast<hist::RegId>(kBuffers + buffer * kCellsPerBuffer + cell);
}
constexpr hist::RegId bookkeeping_reg(int worker) {
  return static_cast<hist::RegId>(kBuffers + kBuffers * kCellsPerBuffer +
                                  static_cast<std::size_t>(worker) - 1);
}

// Owner-flag encoding: 0 = shared/free, otherwise (worker id << 32 | tag).
// Every write is unique, matching the formal model's unique-writes rule.
struct Claimed {
  bool ok;
  std::size_t buffer;
};

Claimed try_claim(tm::TmThread& session, rt::Xoshiro256& rng,
                  hist::Value claim_tag) {
  const std::size_t buffer = rng.below(kBuffers);
  bool claimed = false;
  tm::run_tx_retry(session, [&](tm::TxScope& tx) {
    claimed = false;
    if (tx.read(owner_reg(buffer)) != 0) return;  // someone owns it
    tx.write(owner_reg(buffer), claim_tag);
    claimed = true;
  });
  return {claimed, buffer};
}

void worker(tm::TransactionalMemory& tmi, int id, bool deferred,
            std::vector<std::size_t>& phases_done) {
  auto session = tmi.make_thread(id, nullptr);
  rt::Xoshiro256 rng(static_cast<std::uint64_t>(id) * 977 + 5);
  hist::Value tag = static_cast<hist::Value>(id) << 32;
  std::size_t done = 0;
  for (int phase = 0; phase < kPhasesPerWorker; ++phase) {
    const Claimed claim = try_claim(*session, rng, ++tag);
    if (!claim.ok) continue;

    // The buffer is now logically private — but a transaction that read
    // the owner flag before our claim may still be committing a write to
    // it. The fence waits those out.
    if (deferred) {
      // Queue the privatization and keep doing useful transactional work
      // while the grace period elapses underneath it.
      const rt::FenceTicket ticket = session->fence_async();
      for (int k = 0; k < 2; ++k) {
        tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
          tx.write(bookkeeping_reg(id), ++tag);
        });
      }
      session->fence_wait(ticket);
    } else {
      session->fence();
    }

    // Uninstrumented work: increment a per-buffer phase counter spread
    // over the cells.
    for (std::size_t c = 0; c < kCellsPerBuffer; ++c) {
      const hist::Value v = session->nt_read(cell_reg(claim.buffer, c));
      session->nt_write(cell_reg(claim.buffer, c), v + 1);
    }
    ++done;

    // Publish back: clear the owner flag transactionally. (Publication
    // needs no fence — §3's xpo;txwr edge covers it.)
    tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
      tx.write(owner_reg(claim.buffer), 0 /* free */);
    });
  }
  phases_done[static_cast<std::size_t>(id) - 1] = done;
}

/// Run one full pipeline; returns true when the invariant held.
bool run_pipeline(bool deferred) {
  tm::TmConfig config;
  config.num_registers =
      kBuffers + kBuffers * kCellsPerBuffer + static_cast<std::size_t>(kWorkers);
  config.fence_policy = tm::FencePolicy::kSelective;
  // The deferred phase exercises the coalesced grace-period engine (async
  // tickets always run on it); the sync phase uses the per-fence scan.
  config.fence_mode = deferred ? rt::FenceMode::kGracePeriodEpoch
                               : rt::FenceMode::kEpochCounter;
  auto tmi = tm::make_tm(tm::TmKind::kTl2, config);

  std::vector<std::size_t> phases_done(kWorkers, 0);
  std::vector<std::thread> workers;
  for (int w = 1; w <= kWorkers; ++w) {
    workers.emplace_back([&tmi, &phases_done, deferred, w] {
      worker(*tmi, w, deferred, phases_done);
    });
  }
  for (auto& t : workers) t.join();

  // Verify: total cell increments == kCellsPerBuffer × total phases.
  std::size_t total_phases = 0;
  for (std::size_t p : phases_done) total_phases += p;
  hist::Value total_increments = 0;
  for (std::size_t b = 0; b < kBuffers; ++b) {
    for (std::size_t c = 0; c < kCellsPerBuffer; ++c) {
      total_increments += tmi->peek(cell_reg(b, c));
    }
  }
  const hist::Value expected =
      static_cast<hist::Value>(total_phases) * kCellsPerBuffer;
  std::printf("[%s] phases completed: %zu\n",
              deferred ? "deferred" : "sync", total_phases);
  std::printf("[%s] cell increments:  %llu (expected %llu) — %s\n",
              deferred ? "deferred" : "sync",
              static_cast<unsigned long long>(total_increments),
              static_cast<unsigned long long>(expected),
              total_increments == expected ? "consistent" : "CORRUPTED");
  std::printf("[%s] tm stats: %s\n", deferred ? "deferred" : "sync",
              tmi->stats().summary().c_str());
  return total_increments == expected;
}

}  // namespace

int main() {
  const bool sync_ok = run_pipeline(/*deferred=*/false);
  const bool deferred_ok = run_pipeline(/*deferred=*/true);
  return sync_ok && deferred_ok ? 0 : 1;
}
