// Publication idiom at application scale: a configuration snapshot built
// off-line with plain stores and atomically published to transactional
// readers (Fig 2 generalized to a multi-word payload).
//
// A writer thread repeatedly:
//   1. fills the inactive half of a double-buffered config table with
//      non-transactional writes (it owns unpublished data — no races);
//   2. publishes it by transactionally writing the epoch/selector register.
//
// Reader threads transactionally read the selector and then the selected
// half, checking that every snapshot they observe is internally consistent
// (all cells carry the same epoch stamp). Under the paper's DRF discipline
// the xpo;txwr happens-before edge makes the NT-written payload visible to
// any reader that saw the publication — no fence required.
//
// Build & run:  ./examples/publication_config
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "tm/factory.hpp"

using namespace privstm;

namespace {

constexpr std::size_t kCells = 8;
constexpr hist::RegId kSelector = 0;  // (epoch << 1) | half
constexpr int kReaders = 2;
constexpr int kEpochs = 3000;

constexpr hist::RegId cell_reg(std::size_t half, std::size_t cell) {
  return static_cast<hist::RegId>(1 + half * kCells + cell);
}

}  // namespace

int main() {
  tm::TmConfig config;
  config.num_registers = 1 + 2 * kCells;
  auto tmi = tm::make_tm(tm::TmKind::kTl2, config);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> snapshots{0};
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto session = tmi->make_thread(r + 1, nullptr);
      std::uint64_t local_snapshots = 0;
      std::uint64_t local_torn = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        hist::Value selector = 0;
        std::vector<hist::Value> cells(kCells);
        tm::run_tx_retry(*session, [&](tm::TxScope& tx) {
          selector = tx.read(kSelector);
          const std::size_t half = selector & 1;
          for (std::size_t c = 0; c < kCells; ++c) {
            cells[c] = tx.read(cell_reg(half, c));
          }
        });
        if (selector == 0) continue;  // nothing published yet
        const hist::Value epoch = selector >> 1;
        ++local_snapshots;
        for (std::size_t c = 0; c < kCells; ++c) {
          // Cell payload encoding: (epoch << 8) | cell index.
          if (cells[c] >> 8 != epoch) {
            ++local_torn;
            break;
          }
        }
      }
      snapshots.fetch_add(local_snapshots);
      torn.fetch_add(local_torn);
    });
  }

  {
    auto writer = tmi->make_thread(0, nullptr);
    for (hist::Value epoch = 1; epoch <= kEpochs; ++epoch) {
      const std::size_t half = epoch & 1;
      // Off-line build: plain stores, no instrumentation. This half is
      // unpublished (readers read the other one), so there is no race.
      for (std::size_t c = 0; c < kCells; ++c) {
        writer->nt_write(cell_reg(half, c), (epoch << 8) | c);
      }
      // Publish: one transactional write of the selector.
      tm::run_tx_retry(*writer, [&](tm::TxScope& tx) {
        tx.write(kSelector, (epoch << 1) | half);
      });
      // Before rebuilding this half again (two epochs later) the writer
      // must know no reader still reads it; with two halves and readers
      // that always re-read the selector, a fence bounds the handoff:
      writer->fence();
    }
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  std::printf("snapshots read: %llu, torn: %llu — %s\n",
              static_cast<unsigned long long>(snapshots.load()),
              static_cast<unsigned long long>(torn.load()),
              torn.load() == 0 ? "all consistent" : "CORRUPTED");
  std::printf("tm stats: %s\n", tmi->stats().summary().c_str());
  return torn.load() == 0 ? 0 : 1;
}
