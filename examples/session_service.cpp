// Quickstart for the transactional session-store service layer
// (DESIGN.md §12): a tiny web-session cache on the STM heap.
//
// Three app threads serve zipfian-skewed session traffic (lookups,
// logins, refreshes, logouts) while a maintenance thread periodically
// runs the privatizing expiry sweep — the paper's freeze → fence → NT
// reclaim → republish idiom as a service operation — in both fence
// modes. At the end we print per-op-class latency percentiles from the
// mergeable log-bucketed histograms (rt::LatencyHistogram) and verify
// that no reader ever saw a torn or reclaimed record.
//
// Lifecycle tracing (DESIGN.md §13) is switched on, so the run also
// prints the hottest conflict stripes plus a metrics snapshot, and
// dumps session_service.trace.json — open it in Perfetto or
// chrome://tracing to see the tx / fence / sweep-phase spans.
//
// Build & run:  ./examples/session_service
#include <atomic>
#include <cstdio>

#include "runtime/metrics.hpp"
#include "service/workload.hpp"
#include "tm/factory.hpp"

using namespace privstm;

namespace {

void print_phase(const char* mode, const service::PhaseResult& r) {
  std::printf("%-5s  %8.0f ops/s  hits %llu  misses %llu  sweeps %llu "
              "(retired %llu)\n",
              mode, static_cast<double>(r.throughput_ops()) / r.seconds,
              static_cast<unsigned long long>(r.get_hits),
              static_cast<unsigned long long>(r.get_misses),
              static_cast<unsigned long long>(r.sweeps),
              static_cast<unsigned long long>(r.sweep_retired));
  for (std::size_t c = 0; c < service::kOpClassCount; ++c) {
    const auto& h = r.latency[c];
    if (h.count() == 0) continue;
    std::printf("       %-6s p50 %8llu ns   p99 %8llu ns   p999 %8llu ns"
                "   (%llu samples)\n",
                service::op_class_name(static_cast<service::OpClass>(c)),
                static_cast<unsigned long long>(h.p50()),
                static_cast<unsigned long long>(h.p99()),
                static_cast<unsigned long long>(h.p999()),
                static_cast<unsigned long long>(h.count()));
  }
}

}  // namespace

int main() {
  tm::TmConfig config;
  config.num_registers = 64;
  config.trace.enabled = true;  // lifecycle rings + conflict heat map
  config.trace.ring_capacity = 1 << 16;  // keep more of the run; full
                                         // rings drop-and-count, never block
  auto tmi = tm::make_tm(tm::TmKind::kTl2Fused, config);

  service::SessionStore store(*tmi, {.buckets = 8, .bucket_capacity = 512});

  service::WorkloadConfig cfg;
  cfg.threads = 3;       // app threads; the sweeper rides along
  cfg.num_keys = 1024;   // user population
  cfg.ttl_ticks = 1024;  // session lifetime in logical ticks
  cfg.sweep_every_ticks = 512;

  service::PhaseConfig phase;
  phase.ops_per_thread = 20000;
  phase.zipf_s = 0.99;          // a few users are very active
  phase.mix.put_permille = 250; // logins
  phase.mix.touch_permille = 100;  // keep-alives
  phase.mix.erase_permille = 50;   // logouts

  std::printf("session service on %s, %zu keys, %zu app threads\n\n",
              tmi->name(), cfg.num_keys, cfg.threads);

  std::atomic<std::uint64_t> clock{1};
  std::uint64_t violations = 0;

  // Phase 1: expiry sweeps with the synchronous per-bucket fence.
  cfg.sweep_mode = service::SweepMode::kSyncFence;
  const auto sync_result =
      service::run_phase(*tmi, store, cfg, phase, /*seed=*/1, clock);
  print_phase("sync", sync_result);
  violations += sync_result.consistency_violations;

  // Phase 2: deferred fences — bucket b's grace period elapses while
  // bucket b-1 is scanned, taking the fence off the sweep's critical path.
  cfg.sweep_mode = service::SweepMode::kAsyncFence;
  const auto async_result =
      service::run_phase(*tmi, store, cfg, phase, /*seed=*/2, clock);
  print_phase("async", async_result);
  violations += async_result.consistency_violations;

  if (violations != 0) {
    std::printf("\nFAIL: %llu records disagreed with their headers\n",
                static_cast<unsigned long long>(violations));
    return 1;
  }

  // Observability wrap-up: where did the contention land, and what did
  // the whole run cost? The heat map names the stripes worth sharding;
  // the Prometheus text is what a scrape endpoint would serve.
  rt::MetricsRegistry registry;
  registry.add_counters(&tmi->stats());
  registry.set_trace(tmi->trace_ptr());
  const rt::MetricsSnapshot snap = registry.snapshot();
  std::printf("\nconflicts: %llu total",
              static_cast<unsigned long long>(snap.total_conflicts));
  for (const rt::StripeHeat& h : snap.hot_stripes) {
    std::printf("  stripe %u x%llu", h.stripe,
                static_cast<unsigned long long>(h.aborts));
  }
  std::printf("\n%s\n", rt::to_prometheus(snap).c_str());

  const char* trace_path = "session_service.trace.json";
  if (rt::write_chrome_trace(trace_path, tmi->trace().drain(),
                             tmi->trace().dropped())) {
    std::printf("trace written to %s (load it in Perfetto)\n", trace_path);
  }
  std::printf("all reads consistent; expired sessions reclaimed safely\n");
  return 0;
}
