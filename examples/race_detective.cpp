// Race detective: the paper's formal machinery as a debugging tool.
//
// Takes the Fig 1(a) privatization program and
//   1. decides DRF(P, s, Hatomic) by exhaustive strongly-atomic
//      exploration (§3 / Definition 3.3) — with and without the fence;
//   2. runs the unfenced program on real TL2, records the execution, and
//      prints the data race the happens-before analysis finds;
//   3. runs the fenced program, feeds the recorded history through the
//      full strong-opacity pipeline (cons + opacity graph + serialization
//      witness + Hatomic membership) and prints the verdict.
//
// Build & run:  ./examples/race_detective
#include <cstdio>

#include "drf/race.hpp"
#include "lang/explorer.hpp"
#include "lang/litmus.hpp"
#include "opacity/strong_opacity.hpp"

using namespace privstm;

namespace {

void analyze_under_strong_atomicity(const lang::LitmusSpec& spec) {
  const auto report = lang::check_drf_under_atomic(spec.program);
  std::printf("%-16s DRF(P, s, Hatomic) = %s  (%zu strongly-atomic "
              "outcomes, %zu racy)\n",
              spec.name.c_str(), report.drf ? "yes" : "NO",
              report.total_outcomes, report.racy_outcomes);
  if (!report.drf && report.example_races.has_value() &&
      report.racy_example.has_value()) {
    std::printf("  example race:\n%s",
                report.example_races->to_string(report.racy_example->history)
                    .c_str());
  }
}

void run_and_check(const lang::LitmusSpec& spec, tm::FencePolicy policy) {
  tm::TmConfig config;
  config.num_registers = spec.program.num_registers;
  config.fence_policy = policy;
  config.commit_pause_spins = 512;
  auto tmi = tm::make_tm(tm::TmKind::kTl2, config);

  lang::ExecOptions options;
  options.record = true;
  options.jitter_max_spins = 128;
  options.seed = 12345;
  const auto result = lang::execute(spec.program, *tmi, options);

  const auto verdict = opacity::check_strong_opacity(result.recorded);
  std::printf("%-16s policy=%-10s recorded %zu actions — %s\n",
              spec.name.c_str(), tm::fence_policy_name(policy),
              result.recorded.history.size(),
              verdict.racy ? "history is RACY (outside H|DRF)"
                           : (verdict.ok() ? "strongly opaque"
                                           : "OPACITY VIOLATION"));
  if (verdict.racy) {
    std::printf("%s", verdict.races.to_string(result.recorded.history)
                          .c_str());
    return;
  }
  // DRF: show the synchronization chain ordering the first conflicting
  // pair — the programmer-facing "why is this safe".
  const hist::History& h = result.recorded.history;
  drf::HbGraph hb(h);
  for (std::size_t i = 0; i < h.size(); ++i) {
    for (std::size_t j = i + 1; j < h.size(); ++j) {
      if (!drf::conflicting(h, i, j)) continue;
      const std::size_t from = hb.ordered(i, j) ? i : j;
      const std::size_t to = hb.ordered(i, j) ? j : i;
      std::printf("  ordered conflict: %s\n",
                  hb.explain_string(h, from, to).c_str());
      return;
    }
  }
  std::printf("  (no conflicting accesses occurred in this run)\n");
}

}  // namespace

int main() {
  std::printf("== Static analysis under strong atomicity (explorer) ==\n");
  analyze_under_strong_atomicity(lang::make_fig1a(true));
  analyze_under_strong_atomicity(lang::make_fig1a(false));
  analyze_under_strong_atomicity(lang::make_fig3());

  std::printf("\n== Dynamic analysis of recorded TL2 executions ==\n");
  run_and_check(lang::make_fig1a(true), tm::FencePolicy::kSelective);
  run_and_check(lang::make_fig1a(false), tm::FencePolicy::kNone);

  std::printf("\n== Full strong-opacity verdict for one fenced run ==\n");
  {
    tm::TmConfig config;
    config.num_registers = 2;
    config.fence_policy = tm::FencePolicy::kSelective;
    auto tmi = tm::make_tm(tm::TmKind::kTl2, config);
    lang::ExecOptions options;
    options.record = true;
    const auto result =
        lang::execute(lang::make_fig1a(true).program, *tmi, options);
    const auto verdict = opacity::check_strong_opacity(
        result.recorded, {.verify_relation = true});
    std::printf("%s", verdict.to_string().c_str());
  }
  return 0;
}
